"""Static cost analysis of process programs.

The paper's Section 6 reports that the IvyFrame modelling tool was
extended "to allow for the specification of cost information and for
the validation of the correctness of single processes"; this module is
that tooling for this library: given a program and its registry it
computes the quantities a process designer needs to pick a sensible
cost threshold ``Wcc*``:

* :func:`enumerate_paths` — all root-to-leaf execution paths (the
  preference order makes the first path the preferred execution);
* :func:`worst_case_path_cost` / :func:`expected_cost` — execution cost
  bounds (the expectation folds per-activity failure probabilities into
  a success-path estimate);
* :func:`wcc_profile` — the running worst-case cost ``Wcc`` along the
  preferred path, i.e. exactly the series Figure 1's algorithm compares
  against ``Wcc*``;
* :func:`pseudo_pivot_index` — where a given threshold would trip;
* :func:`suggest_threshold` — the smallest threshold that protects
  every activity at least as expensive as a target cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.activities.registry import ActivityRegistry
from repro.process.program import ProcessProgram, ProgramNode


def enumerate_paths(program: ProcessProgram) -> list[list[str]]:
    """All root-to-leaf activity-name paths, preference order first.

    Multi-activity (parallel) nodes contribute their activities in
    declaration order — cost analysis is order-insensitive.
    """
    paths: list[list[str]] = []

    def walk(node: ProgramNode, prefix: list[str]) -> None:
        extended = prefix + list(node.activities)
        if not node.children:
            paths.append(extended)
            return
        for child in node.children:
            walk(child, extended)

    walk(program.root, [])
    return paths


def path_cost(registry: ActivityRegistry, path: list[str]) -> float:
    """Plain execution cost of one path."""
    return sum(registry.get(name).cost for name in path)


def worst_case_path_cost(program: ProcessProgram) -> float:
    """Execution cost of the most expensive path."""
    registry = program.registry
    return max(
        path_cost(registry, path)
        for path in enumerate_paths(program)
    )


def expected_cost(program: ProcessProgram) -> float:
    """Expected execution cost of the preferred path, failures folded in.

    Each activity with failure probability ``p`` succeeds after an
    expected ``1 / (1 - p)`` attempts (retriable activities have
    ``p = 0``); the estimate charges the activity's cost per attempt.
    This is the designer-facing heuristic, not a full Markov model of
    alternative executions.
    """
    registry = program.registry
    preferred = enumerate_paths(program)[0]
    total = 0.0
    for name in preferred:
        activity = registry.get(name)
        attempts = 1.0 / (1.0 - activity.failure_probability)
        total += activity.cost * attempts
    return total


@dataclass(frozen=True)
class WccStep:
    """One step of the running-Wcc profile."""

    activity: str
    wcc_before: float
    wcc_after: float


def wcc_profile(program: ProcessProgram) -> list[WccStep]:
    """Running ``Wcc`` along the preferred path (Equation 2 repeatedly)."""
    registry = program.registry
    steps: list[WccStep] = []
    wcc = 0.0
    for name in enumerate_paths(program)[0]:
        before = wcc
        wcc = wcc + registry.get(name).cost + registry.compensation_cost(
            name
        )
        steps.append(
            WccStep(activity=name, wcc_before=before, wcc_after=wcc)
        )
    return steps


def pseudo_pivot_index(
    program: ProcessProgram, threshold: float
) -> int | None:
    """Index (on the preferred path) where ``threshold`` first trips.

    Returns ``None`` when the whole path stays below the threshold —
    only possible for pivot-free programs, since a real pivot
    contributes an infinite addend (Lemma 1).
    """
    for index, step in enumerate(wcc_profile(program)):
        if step.wcc_after >= threshold:
            return index
    return None


def suggest_threshold(
    program: ProcessProgram, protect_cost: float
) -> float:
    """Smallest ``Wcc*`` that pivot-treats every costly activity.

    An activity of cost ``>= protect_cost`` on the preferred path is
    "treated" when the running Wcc has reached the threshold by the
    time the activity is classified, i.e. ``Wcc_after(activity) >=
    Wcc*``; the smallest such threshold is the minimum ``Wcc_after``
    over the protected activities.  Returns ``inf`` when nothing on the
    path needs protecting (no finite threshold required).
    """
    registry = program.registry
    candidates = [
        step.wcc_after
        for step in wcc_profile(program)
        if registry.get(step.activity).cost >= protect_cost
        and not math.isinf(step.wcc_after)
    ]
    if not candidates:
        return math.inf
    return min(candidates)


def describe_costing(program: ProcessProgram) -> str:
    """Human-readable cost report for a program."""
    lines = [f"cost analysis of {program.name!r}"]
    lines.append(
        f"  paths: {len(enumerate_paths(program))}, "
        f"worst-case execution cost "
        f"{worst_case_path_cost(program):g}, "
        f"expected (preferred path) {expected_cost(program):g}"
    )
    for step in wcc_profile(program):
        lines.append(
            f"    {step.activity:<24} Wcc {step.wcc_before:>8g} -> "
            f"{step.wcc_after:>8g}"
        )
    return "\n".join(lines)
