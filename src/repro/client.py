"""Client library for the process-locking service.

:class:`ServiceClient` speaks the JSON-lines wire protocol of
:mod:`repro.server` over a plain TCP socket: a background reader
thread splits the inbound stream into responses (matched to pending
requests by the echoed ``id``) and pushed event frames (buffered in a
queue for :meth:`ServiceClient.next_event`), so callers may pipeline
requests and consume the event stream concurrently — the shapes the
benchmark harness and the CI smoke clients need.

>>> with ServiceClient("127.0.0.1", 7453) as client:   # doctest: +SKIP
...     client.subscribe("process.commit")
...     pids = client.submit(program=0, count=4)["pids"]
...     client.stats()["manager"]["committed"]
"""

from __future__ import annotations

import itertools
import json
import queue
import socket
import threading
from concurrent.futures import Future

from repro.server.protocol import encode


class ServiceCallError(Exception):
    """The server answered ``ok: false``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Blocking convenience client over one service connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7453,
        timeout: float = 60.0,
    ) -> None:
        self.timeout = timeout
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._reader = self._sock.makefile("rb")
        self._send_mutex = threading.Lock()
        self._pending_mutex = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._ids = itertools.count(1)
        self.events: queue.Queue = queue.Queue()
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._read_loop, name="repro-client", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            for line in self._reader:
                if not line.strip():
                    continue
                try:
                    frame = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if "event" in frame:
                    self.events.put(frame)
                    continue
                with self._pending_mutex:
                    fut = self._pending.pop(frame.get("id"), None)
                if fut is not None:
                    fut.set_result(frame)
        except (OSError, ValueError):
            pass
        finally:
            self._closed.set()
            with self._pending_mutex:
                pending, self._pending = self._pending, {}
            for fut in pending.values():
                if not fut.done():
                    fut.set_exception(
                        ConnectionError("connection closed")
                    )

    def call_async(self, cmd: str, **args) -> Future:
        """Send one request; the future resolves to the raw frame."""
        if self._closed.is_set():
            raise ConnectionError("connection closed")
        req_id = next(self._ids)
        fut: Future = Future()
        with self._pending_mutex:
            self._pending[req_id] = fut
        frame = {"cmd": cmd, "id": req_id, **args}
        with self._send_mutex:
            self._sock.sendall(encode(frame))
        return fut

    def call(self, cmd: str, **args) -> dict:
        """Round-trip one request; returns the response body.

        Raises :class:`ServiceCallError` on ``ok: false`` frames and
        :class:`ConnectionError` when the link dies first.
        """
        frame = self.call_async(cmd, **args).result(
            timeout=self.timeout
        )
        if not frame.get("ok"):
            err = frame.get("error") or {}
            raise ServiceCallError(
                err.get("code", "unknown"), err.get("message", "")
            )
        return {
            k: v for k, v in frame.items() if k not in ("id", "ok")
        }

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.call("ping")

    def submit(
        self,
        program: int = 0,
        count: int = 1,
        at: float = 0.0,
        wait: bool = False,
    ) -> dict:
        return self.call(
            "submit", program=program, count=count, at=at, wait=wait
        )

    def status(self, pid: int) -> dict:
        return self.call("status", pid=pid)

    def cancel(self, pid: int) -> dict:
        return self.call("cancel", pid=pid)

    def stats(self) -> dict:
        return self.call("stats")

    def check(self, stride: int = 1) -> dict:
        return self.call("check", stride=stride)

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot (JSON form)."""
        return self.call("metrics")

    def dump(self, restore: bool = True) -> dict:
        """The server's flight-recorder window as trace records.

        With ``restore`` (the default) the JSONL string stand-ins for
        non-finite floats are converted back to numbers, so the
        records feed :func:`repro.obs.explain_process` and
        :func:`repro.obs.replay_metrics` directly.
        """
        body = self.call("dump")
        if restore:
            from repro.obs.export import _restore

            body["events"] = [_restore(r) for r in body["events"]]
        return body

    def drain(self) -> dict:
        return self.call("drain")

    def subscribe(self, *topics: str) -> dict:
        return self.call("subscribe", topics=list(topics) or ["*"])

    def unsubscribe(self, token: int | None = None) -> dict:
        if token is None:
            return self.call("unsubscribe")
        return self.call("unsubscribe", token=token)

    def next_event(self, timeout: float | None = None) -> dict | None:
        """Pop one pushed event frame; ``None`` on timeout."""
        try:
            return self.events.get(
                timeout=self.timeout if timeout is None else timeout
            )
        except queue.Empty:
            return None

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say goodbye (best effort) and tear the socket down."""
        if not self._closed.is_set():
            try:
                self.call("bye")
            except Exception:
                pass
        try:
            self._sock.close()
        finally:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
