"""One registry for every ``REPRO_*`` environment knob.

Historically each subsystem read its own environment variable inline
(``ManagerConfig`` field factories, the seed-sweep pool in
:mod:`repro.sim.runner`, the probe fan-out gate in
:mod:`repro.parallel.manager`), which made the full knob surface hard to
discover and easy to drift.  This module is now the single source of
truth: every knob is declared once with its environment variable, its
default, its clamp, and a one-line description, and every consumer
resolves through the same helper.

Resolution order (strictly, for every knob):

1. an **explicit override** passed by the caller (a CLI flag or a
   config-object field the caller set) wins;
2. otherwise the **environment variable**;
3. otherwise the built-in **default**.

``repro config`` renders the table below with each knob's current value
and where it came from, so a deployment can always answer "what is this
process actually running with?".
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "KNOBS",
    "Knob",
    "audit_every",
    "batch_k",
    "describe",
    "flight_events",
    "flight_path",
    "parallel_fanout",
    "resolve",
    "seed_workers",
    "serve_host",
    "serve_metrics_port",
    "serve_port",
    "store_fsync",
    "store_kind",
    "store_path",
    "store_snapshot_every",
    "store_sync_every",
    "workers",
]


@dataclass(frozen=True)
class Knob:
    """Declaration of one environment knob."""

    #: Short name used by :func:`resolve` and the ``repro config`` table.
    name: str
    #: Environment variable consulted when no override is given.
    env: str
    #: Built-in default (already in parsed form; ``None`` = unset).
    default: object
    description: str
    #: Parser applied to the raw string (override values are assumed to
    #: be parsed already).  Receives the raw env string.
    parse: object = int
    #: Clamp applied to every parsed value (override or env), keeping
    #: the historical ``max(floor, ...)`` semantics in one place.
    floor: int | None = None


def _parse_optional_int(raw: str) -> int | None:
    """``REPRO_PARALLEL_FANOUT`` semantics: empty string means unset."""
    return int(raw) if raw else None


def _parse_optional_str(raw: str) -> str | None:
    return raw if raw else None


KNOBS: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            name="workers",
            env="REPRO_WORKERS",
            default=0,
            floor=0,
            description=(
                "shard worker threads (0 = sequential manager; N >= 1 "
                "selects the thread-per-shard parallel manager)"
            ),
        ),
        Knob(
            name="batch_k",
            env="REPRO_BATCH_K",
            default=1,
            floor=1,
            description=(
                "batch lock-acquisition depth: upcoming activities "
                "pre-declared per shard visit (parallel manager only)"
            ),
        ),
        Knob(
            name="audit_every",
            env="REPRO_AUDIT_EVERY",
            default=1,
            floor=1,
            description=(
                "structural-audit sampling cadence (1 = audit every "
                "event; N > 1 samples one shard round-robin per audit)"
            ),
        ),
        Knob(
            name="seed_workers",
            env="REPRO_SEED_WORKERS",
            default=1,
            description=(
                "seed-sweep process pool size (1 = serial, 0 = one "
                "worker per core, N = at most N workers)"
            ),
        ),
        Knob(
            name="parallel_fanout",
            env="REPRO_PARALLEL_FANOUT",
            default=None,
            parse=_parse_optional_int,
            description=(
                "min locks per shard group before batch probes fan out "
                "to the owning workers (unset = probes stay on the "
                "coordinator; sensible on free-threaded builds only)"
            ),
        ),
        Knob(
            name="serve_host",
            env="REPRO_SERVE_HOST",
            default="127.0.0.1",
            parse=str,
            description="bind address of `repro serve`",
        ),
        Knob(
            name="serve_port",
            env="REPRO_SERVE_PORT",
            default=7453,
            floor=0,
            description="TCP port of `repro serve` (0 = ephemeral)",
        ),
        Knob(
            name="serve_backlog",
            env="REPRO_SERVE_BACKLOG",
            default=256,
            floor=1,
            description=(
                "submission backlog the server accepts before shedding "
                "SUBMITs at the socket (overload protection)"
            ),
        ),
        Knob(
            name="serve_metrics_port",
            env="REPRO_SERVE_METRICS_PORT",
            default=None,
            parse=_parse_optional_int,
            description=(
                "HTTP /metrics sidecar port of `repro serve` (0 = "
                "ephemeral, unset = no sidecar)"
            ),
        ),
        Knob(
            name="flight_events",
            env="REPRO_FLIGHT_EVENTS",
            default=512,
            floor=1,
            description=(
                "flight-recorder ring capacity: last N trace events "
                "retained in the service for crash dumps"
            ),
        ),
        Knob(
            name="flight_path",
            env="REPRO_FLIGHT_PATH",
            default=None,
            parse=_parse_optional_str,
            description=(
                "JSONL path the service dumps the flight recorder to "
                "on SIGTERM drain or unhandled errors (unset = dump "
                "only via the `dump` wire verb)"
            ),
        ),
        Knob(
            name="store_kind",
            env="REPRO_STORE",
            default=None,
            parse=_parse_optional_str,
            description=(
                "durable storage backend: 'log' (append-only CRC32 "
                "frame log), 'sqlite', or 'memory' (volatile, for "
                "benchmarks); unset = no durability"
            ),
        ),
        Knob(
            name="store_path",
            env="REPRO_STORE_PATH",
            default=None,
            parse=_parse_optional_str,
            description=(
                "directory (log backend) or database path (sqlite) of "
                "the durable store (unset = a fresh temp directory, "
                "which persists nothing across restarts on purpose)"
            ),
        ),
        Knob(
            name="store_fsync",
            env="REPRO_STORE_FSYNC",
            default="batch",
            parse=str,
            description=(
                "fsync policy of the durable store: 'always' (sync "
                "every append), 'batch' (sync every "
                "REPRO_STORE_SYNC_EVERY appends and at every drain "
                "point), or 'never' (leave syncing to the OS)"
            ),
        ),
        Knob(
            name="store_sync_every",
            env="REPRO_STORE_SYNC_EVERY",
            default=64,
            floor=1,
            description=(
                "appends between fsyncs under the 'batch' policy "
                "(a crash can lose at most this many unsynced records)"
            ),
        ),
        Knob(
            name="store_snapshot_every",
            env="REPRO_STORE_SNAPSHOT_EVERY",
            default=256,
            floor=1,
            description=(
                "journal records accumulated since the last snapshot "
                "before the service takes a new one at the next "
                "quiescent point"
            ),
        ),
    )
}


def resolve(name: str, override: object = None):
    """The effective value of one knob under the resolution order.

    ``override`` is the caller's explicit value (``None`` = not given);
    it is returned as-is apart from the knob's clamp, so CLI flags and
    config fields behave exactly like the historical inline reads.
    """
    knob = KNOBS[name]
    if override is not None:
        value = override
    else:
        raw = os.environ.get(knob.env)
        if raw is None or (raw == "" and knob.parse is not str):
            value = knob.default
        else:
            value = knob.parse(raw)
    if knob.floor is not None and value is not None:
        value = max(knob.floor, value)
    return value


def source(name: str, override: object = None) -> str:
    """Where :func:`resolve` takes the value from, for the CLI table."""
    if override is not None:
        return "override"
    knob = KNOBS[name]
    raw = os.environ.get(knob.env)
    if raw is None or (raw == "" and knob.parse is not str):
        return "default"
    return "env"


def describe() -> list[dict[str, object]]:
    """One row per knob: current value, origin, default, description."""
    rows = []
    for knob in KNOBS.values():
        value = resolve(knob.name)
        rows.append(
            {
                "knob": knob.name,
                "env": knob.env,
                "value": "unset" if value is None else value,
                "source": source(knob.name),
                "default": (
                    "unset" if knob.default is None else knob.default
                ),
                "description": knob.description,
            }
        )
    return rows


# Named accessors: the call sites read as documentation and the clamp
# semantics stay greppable next to their historical homes.
def workers(override: int | None = None) -> int:
    return resolve("workers", override)


def batch_k(override: int | None = None) -> int:
    return resolve("batch_k", override)


def audit_every(override: int | None = None) -> int:
    return resolve("audit_every", override)


def seed_workers(override: int | None = None) -> int:
    return resolve("seed_workers", override)


def parallel_fanout(override: int | None = None) -> int | None:
    value = resolve("parallel_fanout", override)
    return None if value is None else max(1, value)


def serve_host(override: str | None = None) -> str:
    return resolve("serve_host", override)


def serve_port(override: int | None = None) -> int:
    return resolve("serve_port", override)


def serve_backlog(override: int | None = None) -> int:
    return resolve("serve_backlog", override)


def serve_metrics_port(override: int | None = None) -> int | None:
    return resolve("serve_metrics_port", override)


def flight_events(override: int | None = None) -> int:
    return resolve("flight_events", override)


def flight_path(override: str | None = None) -> str | None:
    return resolve("flight_path", override)


def store_kind(override: str | None = None) -> str | None:
    return resolve("store_kind", override)


def store_path(override: str | None = None) -> str | None:
    return resolve("store_path", override)


def store_fsync(override: str | None = None) -> str:
    return resolve("store_fsync", override)


def store_sync_every(override: int | None = None) -> int:
    return resolve("store_sync_every", override)


def store_snapshot_every(override: int | None = None) -> int:
    return resolve("store_snapshot_every", override)
