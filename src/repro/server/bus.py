"""Typed in-process event bus with topic subscriptions.

The bus decouples the emitting side (the manager's tracer, bridged by
:class:`repro.server.bridge.BusTracer`, plus the service's own
lifecycle announcements) from consumers (connected ``SUBSCRIBE``
clients, tests, the benchmark harness).  Topics are the event ``kind``
strings of :mod:`repro.obs.events` — ``process.commit``,
``lock.defer``, ``fault.crash`` — plus the service's own
``service.*`` announcements.

Patterns
--------
* ``"*"`` matches every topic;
* ``"process.*"`` (trailing ``.*``) matches the whole ``process.``
  prefix;
* anything else matches exactly.

Delivery is synchronous on the publisher's thread: subscribers get the
record in publish order, and a subscriber that raises is counted in
:attr:`EventBus.dropped` rather than poisoning the publisher (the
manager's engine thread must never die to a slow client callback).
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field


def topic_matches(pattern: str, topic: str) -> bool:
    """Whether one subscription pattern covers one topic."""
    if pattern == "*":
        return True
    if pattern.endswith(".*"):
        return topic.startswith(pattern[:-1])
    return pattern == topic


@dataclass(frozen=True)
class Subscription:
    """One registered subscriber (immutable; replaced, never mutated)."""

    token: int
    patterns: tuple[str, ...]
    callback: Callable[[str, dict], None]

    def covers(self, topic: str) -> bool:
        return any(topic_matches(p, topic) for p in self.patterns)


@dataclass
class BusCounters:
    """Publish-side accounting, surfaced by the ``STATS`` command."""

    published: int = 0
    delivered: int = 0
    dropped: int = 0
    by_topic: dict[str, int] = field(default_factory=dict)


class EventBus:
    """Thread-safe publish/subscribe fan-out over string topics.

    Subscription state is copy-on-write: ``publish`` snapshots the
    subscriber tuple under the lock and calls the callbacks outside it,
    so a callback may itself subscribe or unsubscribe (and publishers
    on different threads never serialize on subscriber work).
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._tokens = itertools.count(1)
        self._subs: tuple[Subscription, ...] = ()
        self.counters = BusCounters()

    def subscribe(
        self,
        patterns: Iterable[str],
        callback: Callable[[str, dict], None],
    ) -> int:
        """Register ``callback(topic, record)``; returns a token."""
        pats = tuple(patterns)
        if not pats:
            raise ValueError("subscription needs at least one pattern")
        sub = Subscription(
            token=next(self._tokens), patterns=pats, callback=callback
        )
        with self._mutex:
            self._subs = (*self._subs, sub)
        return sub.token

    def unsubscribe(self, token: int) -> bool:
        """Drop one subscription; ``False`` when already gone."""
        with self._mutex:
            kept = tuple(s for s in self._subs if s.token != token)
            changed = len(kept) != len(self._subs)
            self._subs = kept
        return changed

    def publish(self, topic: str, record: dict) -> int:
        """Deliver ``record`` to every covering subscriber.

        Returns the delivery count.  Callback exceptions are swallowed
        and counted (:attr:`BusCounters.dropped`) — the publisher is
        the simulation engine thread and must stay alive.
        """
        with self._mutex:
            subs = self._subs
            counters = self.counters
            counters.published += 1
            counters.by_topic[topic] = counters.by_topic.get(topic, 0) + 1
        delivered = 0
        for sub in subs:
            if not sub.covers(topic):
                continue
            try:
                sub.callback(topic, record)
                delivered += 1
            except Exception:
                with self._mutex:
                    counters.dropped += 1
        if delivered:
            with self._mutex:
                counters.delivered += delivered
        return delivered

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)
