"""The engine-thread core of the process-locking service.

:class:`ProcessLockingService` owns one
:class:`~repro.scheduler.manager.ProcessManager` (sequential or
thread-per-shard, picked by the ``workers`` knob through
:func:`~repro.scheduler.manager.make_manager`) and drives it from a
single dedicated engine thread; every network-facing layer talks to it
through a command queue, so the simulation state is never touched
concurrently.

Pacing
------
With ``time_scale == 0`` (**eager**, the default) every command batch
is followed by a drain to quiescence: virtual time jumps, responses
describe a settled world, and a single-client scripted session is
byte-deterministic at a fixed seed.  With ``time_scale > 0`` (**paced**)
each wall-clock tick advances virtual time by
``elapsed_wall * time_scale`` via
:meth:`~repro.scheduler.engine.SimulationEngine.run_due`, so processes
stay genuinely in flight between ticks and ``CANCEL`` can catch a
running process.

Overload protection
-------------------
:meth:`ProcessLockingService.shed_reason` is checked by the network
layer *before* a ``SUBMIT`` is enqueued — i.e. before the process
draws a timestamp or touches a lock: submissions are shed when the
service is draining, when the not-yet-initiated backlog reaches the
``serve_backlog`` knob, or when any subsystem circuit breaker of the
attached resilience layer is open (mirroring the admission gate at the
socket instead of queueing work the gate would only defer).

Drain
-----
``DRAIN`` (and the network layer's SIGTERM path) stops admissions,
runs the engine to quiescence so every in-flight process terminates,
closes the manager, and answers with a final summary — no submitted
process is ever dropped mid-flight.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, fields, replace

from repro import config as repro_config
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import EventMetrics, MetricsTracer
from repro.scheduler.manager import ManagerConfig, make_manager
from repro.server.bridge import BusTracer
from repro.server.bus import EventBus
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    check_process_recoverability,
    is_prefix_reducible,
)


@dataclass
class ServiceConfig:
    """Everything needed to stand up one service instance."""

    #: Protocol name from :data:`repro.sim.runner.PROTOCOL_FACTORIES`.
    protocol: str = "process-locking"
    #: Template workload: its programs become the submission catalog
    #: (``SUBMIT {"program": i}`` runs catalog entry ``i mod size``)
    #: and its registry/conflict matrix/subsystems define the world.
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)
    seed: int = 0
    #: Shard workers / batch depth; ``None`` defers to the
    #: ``REPRO_WORKERS`` / ``REPRO_BATCH_K`` knobs (:mod:`repro.config`).
    workers: int | None = None
    batch_k: int | None = None
    #: Submission backlog before shedding; ``None`` defers to the
    #: ``REPRO_SERVE_BACKLOG`` knob.
    max_backlog: int | None = None
    #: Virtual-time units per wall second; 0 = eager (see module doc).
    time_scale: float = 0.0
    #: Paced-mode wall poll interval, seconds.
    tick: float = 0.02
    #: Full manager-config override for advanced callers (resilience
    #: layers, audit cadence); ``workers``/``batch_k`` above still win.
    manager_config: ManagerConfig | None = None
    #: Flight-recorder ring capacity; ``None`` defers to the
    #: ``REPRO_FLIGHT_EVENTS`` knob.
    flight_capacity: int | None = None
    #: JSONL path for automatic flight dumps (SIGTERM drain, unhandled
    #: errors); ``None`` defers to the ``REPRO_FLIGHT_PATH`` knob,
    #: which is itself unset by default — the ``dump`` wire verb works
    #: regardless.
    flight_path: str | None = None
    #: Durable persistence: a :class:`repro.storage.Store` instance, a
    #: backend-kind string (``log`` / ``sqlite`` / ``memory``), or
    #: ``None`` to defer to the ``REPRO_STORE`` knob (unset = run
    #: in-memory, the seed behaviour).  When set, every acknowledged
    #: submission and terminal outcome is journaled, snapshots are cut
    #: on the ``snapshot_every`` cadence, and a restart on the same
    #: store replays and resumes — see ``docs/persistence.md``.
    store: object | None = None
    #: Store directory (log) or database path (sqlite); ``None`` defers
    #: to ``REPRO_STORE_PATH``, then to a fresh temporary directory.
    store_path: str | None = None
    #: fsync policy ``always`` / ``batch`` / ``never``; ``None`` defers
    #: to the ``REPRO_STORE_FSYNC`` knob.
    store_fsync: str | None = None
    #: Batch-fsync threshold; ``None`` defers to
    #: ``REPRO_STORE_SYNC_EVERY``.
    store_sync_every: int | None = None
    #: Journal records between snapshots; ``None`` defers to
    #: ``REPRO_STORE_SNAPSHOT_EVERY``.
    snapshot_every: int | None = None


class ProcessLockingService:
    """Command-queue front end over one process manager."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.bus = EventBus()
        self.bus_tracer = BusTracer(self.bus)
        self.metrics = EventMetrics()
        self.flight = FlightRecorder(
            repro_config.flight_events(self.config.flight_capacity)
        )
        self.flight_path = repro_config.flight_path(
            self.config.flight_path
        )
        self.store = self._open_store()
        sinks: tuple = (self.bus_tracer,)
        if self.store is not None:
            from repro.storage import JournalTracer

            # Decision provenance (grants, Wcc classifications, retry
            # exhaustions) rides the same journal as the redo records.
            sinks = sinks + (JournalTracer(self.store.journal),)
        # The tee feeds the metrics registry and the flight ring, then
        # forwards to the bus bridge, which stamps exactly as it would
        # standalone (byte-identical wire frames).
        self.tracer = MetricsTracer(
            metrics=self.metrics,
            sinks=sinks,
            recorder=self.flight,
        )
        registry = self.metrics.registry
        self._g_backlog = registry.gauge(
            "repro_service_backlog",
            "Submitted-but-not-initiated processes queued for admission.",
        )
        self._g_waiters = registry.gauge(
            "repro_service_waiters",
            "SUBMIT wait=true calls still awaiting their outcomes.",
        )
        self._g_draining = registry.gauge(
            "repro_service_draining",
            "1 while the service is draining (no new work accepted).",
        )
        self._g_bus = registry.gauge(
            "repro_bus_frames",
            "Event-bus frame counts by disposition.",
            ("disposition",),
        )
        self._g_subscribers = registry.gauge(
            "repro_bus_subscribers", "Live event-bus subscriptions."
        )
        self._c_shed = registry.counter(
            "repro_service_shed_total",
            "Requests rejected before reaching the engine, by reason.",
            ("reason",),
        )
        self._c_flight_dumps = registry.counter(
            "repro_flight_dumps_total",
            "Flight-recorder dump triggers (a file is written only "
            "when a dump path is configured).",
            ("trigger",),
        )
        # Store gauges are registered only when a store is configured,
        # so the non-durable metrics exposition stays byte-identical.
        self._g_store = None
        self._g_store_journal = None
        self._g_store_snapshot_lsn = None
        if self.store is not None:
            self._g_store = registry.gauge(
                "repro_store_io",
                "Durable-store backend I/O totals by operation.",
                ("op",),
            )
            self._g_store_journal = registry.gauge(
                "repro_store_journal_records",
                "Redo-journal records on disk (replayed on restart).",
            )
            self._g_store_snapshot_lsn = registry.gauge(
                "repro_store_snapshot_lsn",
                "Journal watermark covered by the latest snapshot.",
            )
        self.workload = build_workload(self.config.spec)
        manager_config = (
            self.config.manager_config or ManagerConfig()
        )
        manager_config = replace(
            manager_config,
            workers=repro_config.workers(self.config.workers)
            if self.config.workers is not None
            else manager_config.workers,
            batch_k=repro_config.batch_k(self.config.batch_k)
            if self.config.batch_k is not None
            else manager_config.batch_k,
        )
        self._cancelled: set[int] = set()
        #: Recovery outcome of this incarnation (``None`` = cold start).
        self.recovery = None
        self.plane = None
        if self.store is not None:
            from repro.storage import PersistencePlane

            manager_config = replace(manager_config, store=self.store)
            self.plane = PersistencePlane(
                self.store,
                self.workload.programs,
                snapshot_every=self.config.snapshot_every,
            )
            self.plane.ensure_meta(
                protocol=self.config.protocol,
                seed=self.config.seed,
                spec=_spec_fingerprint(self.config.spec),
            )
        protocol = make_protocol(self.config.protocol, self.workload)
        pool = self.workload.make_subsystems()
        if self.plane is not None and self.plane.has_state():
            self.manager, self.recovery = self.plane.recover(
                protocol,
                config=manager_config,
                subsystems=pool,
                seed=self.config.seed,
                tracer=self.tracer,
            )
            self._cancelled |= self.recovery.cancelled_pids
        else:
            self.manager = make_manager(
                protocol,
                subsystems=pool,
                config=manager_config,
                seed=self.config.seed,
                tracer=self.tracer,
            )
        self.max_backlog = repro_config.serve_backlog(
            self.config.max_backlog
        )
        self._commands: queue.Queue = queue.Queue()
        #: (response builder, future) pairs resolved after each drain.
        self._deferred: list[tuple[object, Future]] = []
        #: (pid set, request id, future) triples for ``wait`` submits.
        self._waiters: list[tuple[set[int], Future]] = []
        #: pid -> wall submit time, popped into the submit-to-commit
        #: histogram when the pid turns terminal.
        self._wall_submitted: dict[int, float] = {}
        #: The HTTP metrics sidecar, installed by the network layer
        #: when a metrics port is configured.
        self.sidecar = None
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._stop = threading.Event()
        self._started = threading.Event()
        self._thread: threading.Thread | None = None
        # Shed mirrors, written on the engine thread after each drain
        # and read lock-free from the network thread (atomic swaps).
        self._pending_submissions = 0
        self._open_breakers: tuple[str, ...] = ()

    def _open_store(self):
        """Resolve the configured durability backend (or ``None``).

        ``ServiceConfig.store`` may already be a
        :class:`repro.storage.Store` (a restart test reopening the same
        directory builds one itself) or a backend-kind string; with
        neither, the ``REPRO_STORE`` knob decides.
        """
        configured = self.config.store
        if configured is None:
            configured = repro_config.store_kind()
        if configured is None:
            return None
        if isinstance(configured, str):
            from repro.storage import Store

            return Store.open(
                configured,
                self.config.store_path,
                fsync=self.config.store_fsync,
                sync_every=self.config.store_sync_every,
            )
        return configured

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcessLockingService":
        """Spawn the engine thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop,
                name="repro-service-engine",
                daemon=True,
            )
            self._thread.start()
            self._started.wait()
        return self

    def stop(self) -> None:
        """Drain (if not already) and stop the engine thread."""
        if self._thread is None:
            return
        if not self._drained.is_set():
            try:
                self.execute({"cmd": "drain"}).result(timeout=60)
            except Exception:
                pass
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None
        if self.store is not None:
            self.store.close()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # ------------------------------------------------------------------
    # network-facing entry points (any thread)
    # ------------------------------------------------------------------
    def shed_reason(self, cmd: str) -> tuple[str, str] | None:
        """``(code, message)`` when ``cmd`` must be rejected up front."""
        if self._draining.is_set() and cmd in ("submit", "cancel"):
            return ("draining", "server is draining; no new work")
        if cmd != "submit":
            return None
        backlog = self._pending_submissions + self._commands.qsize()
        if backlog >= self.max_backlog:
            return (
                "overloaded",
                f"submission backlog {backlog} at cap "
                f"{self.max_backlog}; retry later",
            )
        if self._open_breakers:
            return (
                "overloaded",
                "circuit breaker open for subsystem(s) "
                f"{', '.join(self._open_breakers)}; retry later",
            )
        return None

    def execute(self, request: dict) -> Future:
        """Queue one request for the engine thread; returns a future.

        The future resolves to a response *body* dict (the network
        layer wraps it into a wire frame) or raises
        :class:`ServiceError` for request-level failures.
        """
        fut: Future = Future()
        shed = self.shed_reason(request.get("cmd", ""))
        if shed is not None:
            self._c_shed.inc((shed[0],))
            fut.set_exception(ServiceError(*shed))
            return fut
        if self._drained.is_set() and request.get("cmd") not in (
            "ping",
            "stats",
            "status",
            "check",
            "metrics",
            "dump",
            "drain",
        ):
            fut.set_exception(
                ServiceError("draining", "server has drained")
            )
            return fut
        self._commands.put((request, fut))
        return fut

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        eager = self.config.time_scale <= 0
        start_wall = time.monotonic()
        self._started.set()
        while not self._stop.is_set():
            batch = self._next_batch()
            for request, fut in batch:
                self._apply(request, fut)
            if eager:
                self.manager.engine.run(
                    max_events=self.manager.config.max_events
                )
            else:
                deadline = (
                    time.monotonic() - start_wall
                ) * self.config.time_scale
                self.manager.engine.run_due(deadline)
            self._post_drain()

    def _next_batch(self) -> list:
        batch = []
        try:
            batch.append(self._commands.get(timeout=self.config.tick))
        except queue.Empty:
            return batch
        while True:
            try:
                batch.append(self._commands.get_nowait())
            except queue.Empty:
                return batch

    def _apply(self, request: dict, fut: Future) -> None:
        cmd = request.get("cmd")
        try:
            handler = getattr(self, f"_cmd_{cmd}", None)
            if handler is None:
                raise ServiceError(
                    "unknown-command", f"unknown command {cmd!r}"
                )
            handler(request, fut)
        except ServiceError as exc:
            fut.set_exception(exc)
        except Exception as exc:  # defensive: engine must not die
            self._flight_dump("internal-error")
            fut.set_exception(
                ServiceError("internal", f"{type(exc).__name__}: {exc}")
            )

    def _flight_dump(self, trigger: str) -> str | None:
        """Write the flight ring to ``flight_path`` (when configured).

        Never raises — a dump failure must not mask the error that
        triggered it.  Returns the path written, or ``None``.
        """
        self._c_flight_dumps.inc((trigger,))
        if self.flight_path is None:
            return None
        try:
            written = self.flight.dump_jsonl(self.flight_path)
        except OSError:
            return None
        self.bus.publish(
            "service.flight",
            {
                "kind": "service.flight",
                "trigger": trigger,
                "path": str(self.flight_path),
                "events": written,
            },
        )
        return str(self.flight_path)

    # -- command handlers (engine thread) ------------------------------
    def _cmd_ping(self, request: dict, fut: Future) -> None:
        self._deferred.append(
            (lambda: {"pong": True, "now": self.manager.engine.now}, fut)
        )

    def _cmd_submit(self, request: dict, fut: Future) -> None:
        program = _int_arg(request, "program", 0, minimum=0)
        count = _int_arg(request, "count", 1, minimum=1)
        at = request.get("at", 0.0)
        if not isinstance(at, (int, float)) or at < 0:
            raise ServiceError(
                "bad-request", f"'at' must be a delay >= 0, got {at!r}"
            )
        catalog = self.workload.programs
        pids = []
        for k in range(count):
            index = (program + k) % len(catalog)
            pid = self.manager.submit(catalog[index], at=float(at))
            if self.plane is not None:
                # Journaled before the ack future resolves (the flush
                # in after_drain precedes deferred resolution), so an
                # acknowledged pid survives a kill -9.
                self.plane.note_submit(pid, index, float(at))
            pids.append(pid)
        submitted_wall = time.monotonic()
        for pid in pids:
            self._wall_submitted[pid] = submitted_wall
        if request.get("wait"):
            self._waiters.append((set(pids), fut))
        else:
            self._deferred.append((lambda: {"pids": pids}, fut))

    def _cmd_status(self, request: dict, fut: Future) -> None:
        pid = _int_arg(request, "pid", None, minimum=1)
        self._deferred.append((lambda: self._status_body(pid), fut))

    def _cmd_cancel(self, request: dict, fut: Future) -> None:
        pid = _int_arg(request, "pid", None, minimum=1)
        if pid not in self.manager.records:
            raise ServiceError("unknown-pid", f"no process {pid}")
        cancelled = self.manager.cancel(pid)
        if cancelled:
            self._cancelled.add(pid)
            if self.plane is not None:
                self.plane.note_cancel(pid)
        self._deferred.append(
            (lambda: {"pid": pid, "cancelled": cancelled}, fut)
        )

    def _cmd_stats(self, request: dict, fut: Future) -> None:
        self._deferred.append((self._stats_body, fut))

    def _cmd_metrics(self, request: dict, fut: Future) -> None:
        self._deferred.append((self.metrics_snapshot, fut))

    def _cmd_dump(self, request: dict, fut: Future) -> None:
        self._deferred.append((self._dump_body, fut))

    def _cmd_check(self, request: dict, fut: Future) -> None:
        stride = _int_arg(request, "stride", 1, minimum=1)
        self._deferred.append((lambda: self._check_body(stride), fut))

    def _cmd_drain(self, request: dict, fut: Future) -> None:
        self._draining.set()
        self.manager.engine.run(
            max_events=self.manager.config.max_events
        )
        self.manager.close()
        if self.plane is not None:
            self.plane.after_drain(
                self.manager, self._is_terminal, self._cancelled
            )
            self.plane.final(self.manager)
        self._drained.set()
        self._settle_latencies()
        self._flight_dump("drain")
        body = self._stats_body()
        body["drained"] = True
        body["quiesced"] = not (
            self.manager._processes or self.manager._pending_init
        )
        self.bus.publish(
            "service.drained",
            {"kind": "service.drained", "quiesced": body["quiesced"]},
        )
        self._deferred.append((lambda: body, fut))

    def _cmd_subscribe(self, request: dict, fut: Future) -> None:
        # Subscription wiring is connection-local; the network layer
        # intercepts it.  Reaching here means a caller without one.
        raise ServiceError(
            "bad-request", "subscribe is handled per connection"
        )

    _cmd_unsubscribe = _cmd_subscribe

    def _cmd_bye(self, request: dict, fut: Future) -> None:
        self._deferred.append((lambda: {"bye": True}, fut))

    # -- post-drain bookkeeping (engine thread) ------------------------
    def _settle_latencies(self) -> None:
        """Move terminal pids into the submit-to-commit histogram."""
        if not self._wall_submitted:
            return
        now_wall = time.monotonic()
        done = [
            pid
            for pid in self._wall_submitted
            if self._is_terminal(pid)
        ]
        for pid in done:
            started = self._wall_submitted.pop(pid)
            self.metrics.observe_latency(
                now_wall - started, self._outcome(pid)
            )

    def _post_drain(self) -> None:
        if self.plane is not None:
            # Durability point: terminals journaled, snapshot cadence
            # honoured, everything flushed — before any future below
            # acknowledges a client.
            self.plane.after_drain(
                self.manager, self._is_terminal, self._cancelled
            )
        self._settle_latencies()
        for builder, fut in self._deferred:
            if not fut.set_running_or_notify_cancel():
                continue
            try:
                fut.set_result(builder())
            except ServiceError as exc:
                fut.set_exception(exc)
            except Exception as exc:
                fut.set_exception(
                    ServiceError(
                        "internal", f"{type(exc).__name__}: {exc}"
                    )
                )
        self._deferred.clear()
        if self._waiters:
            unresolved = []
            for pids, fut in self._waiters:
                if all(self._is_terminal(p) for p in pids):
                    if fut.set_running_or_notify_cancel():
                        fut.set_result(self._outcomes_body(pids))
                else:
                    unresolved.append((pids, fut))
            self._waiters = unresolved
        self._pending_submissions = len(self.manager._pending_init)
        self._open_breakers = self._snapshot_open_breakers()

    def _snapshot_open_breakers(self) -> tuple[str, ...]:
        layer = self.manager.resilience
        health = getattr(layer, "health", None)
        if health is None:
            return ()
        return health.open_subsystems(self.manager.engine.now)

    # -- response bodies -----------------------------------------------
    def _is_terminal(self, pid: int) -> bool:
        return (
            pid not in self.manager._pending_init
            and pid not in self.manager._processes
        )

    def _outcome(self, pid: int) -> str:
        record = self.manager.records.get(pid)
        if record is not None and record.committed_at is not None:
            return "committed"
        if pid in self._cancelled:
            return "cancelled"
        return "aborted"

    def _outcomes_body(self, pids: set[int]) -> dict:
        rows = []
        for pid in sorted(pids):
            record = self.manager.records.get(pid)
            rows.append(
                {
                    "pid": pid,
                    "outcome": self._outcome(pid),
                    "latency": record.latency if record else None,
                }
            )
        return {"pids": sorted(pids), "outcomes": rows}

    def _status_body(self, pid: int) -> dict:
        manager = self.manager
        if pid in manager._pending_init:
            return {"pid": pid, "state": "pending"}
        process = manager._processes.get(pid)
        if process is not None:
            return {
                "pid": pid,
                "state": process.state.value,
                "incarnation": process.incarnation,
            }
        record = manager.records.get(pid)
        if record is None:
            raise ServiceError("unknown-pid", f"no process {pid}")
        return {
            "pid": pid,
            "state": "done",
            "outcome": self._outcome(pid),
            "committed_at": record.committed_at,
            "latency": record.latency,
            "resubmissions": record.resubmissions,
        }

    def _stats_body(self) -> dict:
        manager = self.manager
        stats = {
            f.name: getattr(manager.stats, f.name)
            for f in fields(manager.stats)
            if not f.name.startswith("_")
        }
        counters = self.bus.counters
        return {
            "manager": stats,
            "engine": {
                "now": manager.engine.now,
                "events_processed": manager.engine.events_processed,
                "pending": manager.engine.pending,
            },
            "service": {
                "backlog": self._pending_submissions,
                "draining": self._draining.is_set(),
                "open_breakers": list(self._open_breakers),
                "waiters": len(self._waiters),
                "catalog_size": len(self.workload.programs),
                "workers": manager.config.workers,
            },
            "bus": {
                "published": counters.published,
                "delivered": counters.delivered,
                "dropped": counters.dropped,
                "subscribers": self.bus.subscriber_count,
            },
            **(
                {"store": self._store_body()}
                if self.store is not None
                else {}
            ),
        }

    def _store_body(self) -> dict:
        body = self.store.stats()
        # The path is host-local noise on the wire (and randomized for
        # ambient temp stores, which would break the byte-deterministic
        # scripted-session guarantee); the serve banner and
        # `repro store inspect` carry it for operators.
        body.pop("path", None)
        body["journal_records"] = self.plane.journal_len
        body["snapshot_lsn"] = self.plane._snapshot_lsn
        if self.recovery is not None:
            body["recovered"] = {
                "adopted": self.recovery.adopted,
                "resubmitted": self.recovery.resubmitted,
                "restored": self.recovery.restored,
                "healed": self.recovery.healed,
                "seconds": round(self.recovery.seconds, 6),
            }
        return body

    def _refresh_service_gauges(self) -> None:
        """Fold server-side state into the registry before a snapshot.

        Called on the engine thread for the wire verb and on the
        sidecar's HTTP thread for scrapes — every read here is either a
        lock-free mirror or an atomic attribute read.
        """
        self._g_backlog.set(float(self._pending_submissions))
        self._g_waiters.set(float(len(self._waiters)))
        self._g_draining.set(
            1.0 if self._draining.is_set() else 0.0
        )
        counters = self.bus.counters
        self._g_bus.set(float(counters.published), ("published",))
        self._g_bus.set(float(counters.delivered), ("delivered",))
        self._g_bus.set(float(counters.dropped), ("dropped",))
        self._g_subscribers.set(float(self.bus.subscriber_count))
        if self._g_store is not None:
            stats = self.store.stats()
            self._g_store.set(float(stats["appends"]), ("appends",))
            self._g_store.set(float(stats["fsyncs"]), ("fsyncs",))
            self._g_store.set(
                float(stats["bytes_written"]), ("bytes",)
            )
            self._g_store_journal.set(float(self.plane.journal_len))
            self._g_store_snapshot_lsn.set(
                float(self.plane._snapshot_lsn)
            )

    def metrics_snapshot(self) -> dict:
        """The registry as JSON (the ``metrics`` wire verb's body)."""
        self._refresh_service_gauges()
        return {
            "now": self.manager.engine.now,
            "metrics": self.metrics.registry.snapshot(),
        }

    def render_metrics(self) -> str:
        """Prometheus text exposition (served by the HTTP sidecar)."""
        self._refresh_service_gauges()
        return self.metrics.registry.render_prometheus()

    def _dump_body(self) -> dict:
        records = self.flight.snapshot()
        return {
            "events": records,
            "retained": len(records),
            "appended": self.flight.appended,
            "capacity": self.flight.capacity,
        }

    def _check_body(self, stride: int) -> dict:
        schedule = self.manager.trace.to_schedule(
            self.workload.conflicts.conflict
        )
        complete = schedule.is_complete
        prefix_reducible = is_prefix_reducible(schedule, stride=stride)
        report = check_process_recoverability(schedule)
        return {
            "events": len(schedule.events),
            "complete": complete,
            # CT (Definition 6) is P-RED over a *complete* schedule.
            "correct_termination": prefix_reducible if complete else None,
            "prefix_reducible": prefix_reducible,
            "process_recoverable": report.ok,
            "violations": len(report.violations),
        }


class ServiceError(Exception):
    """A request-level failure with a wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _spec_fingerprint(spec: WorkloadSpec) -> str:
    """Canonical JSON identity of a workload spec.

    Stored in the meta document so a restart against a store written
    for a *different* world (other catalog, other conflict matrix)
    fails loudly instead of replaying nonsense.
    """
    import json
    from dataclasses import asdict

    return json.dumps(
        asdict(spec), sort_keys=True, separators=(",", ":"), default=str
    )


def _int_arg(request: dict, name: str, default, minimum: int):
    value = request.get(name, default)
    if value is None:
        raise ServiceError(
            "bad-request", f"missing integer field {name!r}"
        )
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            "bad-request", f"{name!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ServiceError(
            "bad-request", f"{name!r} must be >= {minimum}, got {value}"
        )
    return value
