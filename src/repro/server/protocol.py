"""JSON-lines wire protocol of the process-locking service.

Every frame — request, response, or pushed event — is one JSON object
per ``\\n``-terminated line, encoded canonically (sorted keys, no
whitespace) so a scripted session at a fixed seed is byte-identical
run to run.  The full specification lives in ``docs/service.md``.

Requests
--------
``{"cmd": <name>, "id": <client token>, ...args}`` — ``id`` is any
JSON value the client picks; the server echoes it verbatim on the
matching response so clients may pipeline.

Responses
---------
``{"id": ..., "ok": true, ...body}`` on success,
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``
on failure.  Well-known codes: ``bad-request`` (malformed frame or
arguments), ``unknown-command``, ``unknown-pid``, ``overloaded``
(submission shed at the socket), ``draining`` (server is shutting
down).

Events
------
``{"event": <topic>, "record": {...}}`` frames are pushed to
subscribed connections, interleaved with responses on the single
per-connection outbound stream (publish order is preserved).
"""

from __future__ import annotations

import json

#: The full command set.  ``submit``/``status``/``cancel`` drive the
#: process lifecycle; ``subscribe``/``unsubscribe`` manage event
#: delivery; ``stats``/``check``/``metrics``/``dump`` observe
#: (``metrics`` returns the registry snapshot, ``dump`` the
#: flight-recorder window); ``drain`` performs a graceful shutdown;
#: ``ping``/``bye`` frame sessions.
COMMANDS = frozenset(
    {
        "ping",
        "submit",
        "status",
        "cancel",
        "subscribe",
        "unsubscribe",
        "stats",
        "check",
        "metrics",
        "dump",
        "drain",
        "bye",
    }
)


class WireError(Exception):
    """A frame that cannot be parsed into a well-formed request."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode(frame: dict) -> bytes:
    """Canonical bytes of one frame (sorted keys, compact, newline)."""
    return (
        json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one request line; raises :class:`WireError` when bad."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("bad-request", f"not utf-8: {exc}") from None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireError("bad-request", f"not json: {exc}") from None
    if not isinstance(frame, dict):
        raise WireError("bad-request", "frame must be a json object")
    cmd = frame.get("cmd")
    if not isinstance(cmd, str):
        raise WireError("bad-request", "missing string field 'cmd'")
    if cmd not in COMMANDS:
        raise WireError(
            "unknown-command",
            f"unknown command {cmd!r}; choose from {sorted(COMMANDS)}",
        )
    return frame


def ok_response(req_id, **body) -> dict:
    """Success frame echoing the request's ``id``."""
    return {"id": req_id, "ok": True, **body}


def error_response(req_id, code: str, message: str) -> dict:
    """Failure frame with a machine code and a one-line message."""
    return {
        "id": req_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def event_frame(topic: str, record: dict) -> dict:
    """Pushed-event frame for one bus record."""
    return {"event": topic, "record": record}
