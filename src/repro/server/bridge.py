"""Bridge the manager's decision events onto the service event bus.

:class:`BusTracer` satisfies the :class:`repro.obs.Tracer` protocol
(``enabled`` / ``emit`` / ``bind_clock`` / ``bind_sampler``), so it
slots into :func:`repro.scheduler.manager.make_manager` exactly where
a recording tracer would — but instead of banking series it flattens
each event to the same ``{seq, t, kind, **payload}`` record shape the
JSONL exporter writes, publishes it on the bus under
``topic = event.kind``, and keeps a bounded ring of recent records for
the ``STATS``/reconnect paths.

Stamping uses the *virtual* clock the manager binds, so the record
stream of a fixed-seed scripted session is byte-identical run to run —
wall time never leaks into the frames.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Callable

from repro.obs.events import event_payload
from repro.server.bus import EventBus


class BusTracer:
    """Tracer-compatible adapter that republishes events to a bus.

    The sampler hook is accepted but unused: gauge polling exists for
    the series bank, and polling per emit would only add jitter to the
    event stream clients see.  Thread-safety matches the parallel
    manager's needs — ``emit`` may be called from shard workers, and
    every structure touched here is safe under concurrent append
    (atomic counter, bounded deque, locked bus).
    """

    enabled = True

    def __init__(self, bus: EventBus, retain: int = 1024) -> None:
        self.bus = bus
        #: Ring of the most recent records (newest last).
        self.recent: deque[dict] = deque(maxlen=retain)
        #: Mirrors :attr:`repro.obs.Tracer.offset`: added to every
        #: clock reading so stamps stay monotone across manager
        #: incarnations under the fault injector.
        self.offset = 0.0
        self._clock: Callable[[], float] = lambda: 0.0
        self._seq = itertools.count()
        self.emitted = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def bind_sampler(
        self, sampler: Callable[[], dict[str, float]]
    ) -> None:
        """Accepted for protocol compatibility; gauges are not bridged."""

    def emit(self, event) -> None:
        """Flatten, stamp, retain, and publish one decision event."""
        record = {
            "seq": next(self._seq),
            "t": self._clock() + self.offset,
            "kind": event.kind,
        }
        record.update(event_payload(event))
        self.recent.append(record)
        self.emitted += 1
        self.bus.publish(event.kind, record)
