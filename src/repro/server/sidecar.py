"""Stdlib HTTP sidecar exposing the service's metrics registry.

``repro serve`` starts this next to the TCP front door when the
``REPRO_SERVE_METRICS_PORT`` knob (or ``--metrics-port``) is set, so
any Prometheus scraper — or plain ``curl`` — can read the live
registry without speaking the JSON-lines protocol:

* ``GET /metrics`` — Prometheus text exposition (format 0.0.4);
* ``GET /metrics.json`` — the same registry as the ``metrics`` wire
  verb's JSON snapshot;
* ``GET /healthz`` — liveness (``503`` once the service drained).

The server is a daemon-threaded :class:`~http.server.ThreadingHTTPServer`
serving read-only snapshots; it never touches the engine thread (the
registry is internally locked), so a scrape can never stall the
simulation.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsSidecar"]

#: Content type mandated by the Prometheus exposition format 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The owning sidecar injects itself on the server object.
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.repro_service
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = service.render_metrics().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = (
                json.dumps(service.metrics_snapshot(), sort_keys=True)
                + "\n"
            ).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            drained = service._drained.is_set()
            status = 503 if drained else 200
            body = (
                json.dumps(
                    {
                        "ok": not drained,
                        "draining": service.draining,
                        "drained": drained,
                    }
                )
                + "\n"
            ).encode("utf-8")
            self._reply(status, "application/json", body)
        else:
            self._reply(
                404, "text/plain; charset=utf-8", b"not found\n"
            )

    def _reply(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes must not spam the server's stdout


class MetricsSidecar:
    """Lifecycle wrapper around the sidecar HTTP server."""

    def __init__(self, service, host: str, port: int) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_service = service
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-sidecar",
            daemon=True,
        )

    def start(self) -> "MetricsSidecar":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
