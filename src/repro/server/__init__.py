"""Process locking as a service.

The ``repro.server`` package puts a network front door on the process
manager so that open-system clients — benchmark drivers, the CI smoke
battery, interactive tooling — can submit transactional processes,
watch their lifecycle, and cancel them over a socket instead of
scripting a closed simulation:

* :mod:`repro.server.bus` — the typed in-process event bus with topic
  subscriptions (exact, ``prefix.*``, and ``*`` patterns);
* :mod:`repro.server.bridge` — :class:`BusTracer`, a
  :class:`repro.obs.Tracer`-compatible adapter that republishes every
  decision event onto the bus, topic = the event's ``kind``;
* :mod:`repro.server.protocol` — the JSON-lines wire protocol
  (requests, responses, event frames) with canonical encoding so a
  scripted session is byte-deterministic;
* :mod:`repro.server.service` — :class:`ProcessLockingService`, the
  engine-thread core: a command queue in front of a
  :class:`~repro.scheduler.manager.ProcessManager` (sequential or
  thread-per-shard), overload shedding, graceful drain, and the
  CT/P-RC/prefix-reducibility battery over the live trace;
* :mod:`repro.server.net` — the asyncio TCP server (``repro serve``)
  with per-connection ordered delivery and SIGTERM drain.
"""

from repro.server.bridge import BusTracer
from repro.server.bus import EventBus, topic_matches
from repro.server.protocol import (
    COMMANDS,
    WireError,
    decode_line,
    encode,
    error_response,
    event_frame,
    ok_response,
)
from repro.server.service import ProcessLockingService, ServiceConfig

__all__ = [
    "COMMANDS",
    "BusTracer",
    "EventBus",
    "ProcessLockingService",
    "ServiceConfig",
    "WireError",
    "decode_line",
    "encode",
    "error_response",
    "event_frame",
    "ok_response",
    "topic_matches",
]
