"""Asyncio TCP front end of the process-locking service.

One asyncio task per connection reads JSON-lines requests and a
companion writer task drains a single per-connection outbound queue —
responses and pushed event frames share that one queue, so a client
always observes its events and responses in a well-defined order (for
a lockstep client in eager mode, a byte-deterministic one: the engine
thread publishes a batch's events before it resolves the batch's
response futures, and the loop preserves that order).

``SUBSCRIBE``/``UNSUBSCRIBE`` are connection-local: they wire the
service bus straight into the connection's outbound queue via
``call_soon_threadsafe`` and never touch the engine thread.  Every
other command funnels through
:meth:`~repro.server.service.ProcessLockingService.execute`, with
``SUBMIT`` shed at the socket (see
:meth:`~repro.server.service.ProcessLockingService.shed_reason`)
before anything is enqueued.

Shutdown: SIGTERM/SIGINT stop the listener, ``DRAIN`` the service (all
in-flight processes run to termination), announce ``service.drained``
to subscribers, then close lingering connections.  The smoke test
asserts no submitted process is lost across this path.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading

from repro import config as repro_config
from repro.server.protocol import (
    WireError,
    decode_line,
    encode,
    error_response,
    event_frame,
    ok_response,
)
from repro.server.service import (
    ProcessLockingService,
    ServiceConfig,
    ServiceError,
)

#: Queue sentinel that tells a connection's writer task to finish.
_CLOSE = object()


async def handle_connection(
    service: ProcessLockingService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client until EOF, ``bye``, or cancellation."""
    loop = asyncio.get_running_loop()
    out_q: asyncio.Queue = asyncio.Queue()

    async def pump() -> None:
        while True:
            frame = await out_q.get()
            if frame is _CLOSE:
                break
            writer.write(encode(frame))
            await writer.drain()

    pump_task = asyncio.create_task(pump())
    tokens: list[int] = []

    def push_event(topic: str, record: dict) -> None:
        loop.call_soon_threadsafe(
            out_q.put_nowait, event_frame(topic, record)
        )

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            try:
                request = decode_line(line)
            except WireError as exc:
                out_q.put_nowait(
                    error_response(None, exc.code, exc.message)
                )
                continue
            req_id = request.get("id")
            cmd = request["cmd"]
            if cmd == "subscribe":
                out_q.put_nowait(
                    _subscribe(service, request, push_event, tokens)
                )
                continue
            if cmd == "unsubscribe":
                out_q.put_nowait(
                    _unsubscribe(service, request, tokens)
                )
                continue
            try:
                body = await asyncio.wrap_future(
                    service.execute(request)
                )
                out_q.put_nowait(ok_response(req_id, **body))
            except ServiceError as exc:
                out_q.put_nowait(
                    error_response(req_id, exc.code, exc.message)
                )
            if cmd == "bye":
                break
    finally:
        for token in tokens:
            service.bus.unsubscribe(token)
        out_q.put_nowait(_CLOSE)
        with contextlib.suppress(Exception):
            await pump_task
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


def _subscribe(service, request, push_event, tokens) -> dict:
    req_id = request.get("id")
    topics = request.get("topics", ["*"])
    if not (
        isinstance(topics, list)
        and topics
        and all(isinstance(t, str) for t in topics)
    ):
        return error_response(
            req_id,
            "bad-request",
            f"'topics' must be a non-empty list of strings, "
            f"got {topics!r}",
        )
    token = service.bus.subscribe(topics, push_event)
    tokens.append(token)
    return ok_response(req_id, token=token, topics=topics)


def _unsubscribe(service, request, tokens) -> dict:
    req_id = request.get("id")
    token = request.get("token")
    if token is None:
        dropped = [t for t in tokens if service.bus.unsubscribe(t)]
        tokens.clear()
        return ok_response(req_id, dropped=len(dropped))
    if token not in tokens:
        return error_response(
            req_id, "bad-request", f"unknown subscription {token!r}"
        )
    tokens.remove(token)
    service.bus.unsubscribe(token)
    return ok_response(req_id, dropped=1)


async def serve(
    service: ProcessLockingService,
    host: str | None = None,
    port: int | None = None,
    *,
    metrics_port: int | None = None,
    on_ready=None,
    shutdown: asyncio.Event | None = None,
) -> None:
    """Listen, serve, and drain gracefully on shutdown.

    ``on_ready(host, port)`` fires once the socket is bound (the CLI
    prints the address; tests and the in-thread helper capture the
    ephemeral port).  ``shutdown`` is set by SIGTERM/SIGINT (installed
    when the loop runs on the main thread) or by the embedding test.

    With a ``metrics_port`` (or the ``REPRO_SERVE_METRICS_PORT`` knob)
    an HTTP ``/metrics`` sidecar runs for the server's lifetime; it is
    exposed as ``service.sidecar`` before ``on_ready`` fires.
    """
    service.start()
    resolved_metrics_port = repro_config.serve_metrics_port(
        metrics_port
    )
    if resolved_metrics_port is not None:
        from repro.server.sidecar import MetricsSidecar

        service.sidecar = MetricsSidecar(
            service,
            repro_config.serve_host(host),
            resolved_metrics_port,
        ).start()
    shutdown = shutdown or asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(sig, shutdown.set)
    connections: set[asyncio.Task] = set()

    async def entry(reader, writer):
        task = asyncio.current_task()
        connections.add(task)
        try:
            await handle_connection(service, reader, writer)
        finally:
            connections.discard(task)

    server = await asyncio.start_server(
        entry,
        repro_config.serve_host(host),
        repro_config.serve_port(port),
        backlog=128,
    )
    bound = server.sockets[0].getsockname()
    if on_ready is not None:
        on_ready(bound[0], bound[1])
    async with server:
        await shutdown.wait()
        # Graceful drain: stop accepting, run every in-flight process
        # to termination, then let clients read the final frames.
        server.close()
        await server.wait_closed()
        if not service._drained.is_set():
            with contextlib.suppress(Exception):
                await asyncio.wrap_future(
                    service.execute({"cmd": "drain"})
                )
        if connections:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(
                        *connections, return_exceptions=True
                    ),
                    timeout=5.0,
                )
        for task in list(connections):
            task.cancel()
    if service.sidecar is not None:
        service.sidecar.stop()
        service.sidecar = None
    service.stop()


def run_server(
    config: ServiceConfig | None = None,
    host: str | None = None,
    port: int | None = None,
    metrics_port: int | None = None,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    service = ProcessLockingService(config)

    def announce(bound_host: str, bound_port: int) -> None:
        print(
            f"repro-serve listening on {bound_host}:{bound_port} "
            f"(protocol={service.config.protocol}, "
            f"workers={service.manager.config.workers}, "
            f"catalog={len(service.workload.programs)})",
            flush=True,
        )
        sidecar = service.sidecar
        if sidecar is not None:
            print(
                f"repro-serve metrics on "
                f"http://{sidecar.host}:{sidecar.port}/metrics",
                flush=True,
            )
        if service.store is not None:
            stats = service.store.stats()
            line = (
                f"repro-serve store {stats['kind']} at "
                f"{stats['path']} (fsync={stats['fsync']})"
            )
            recovery = service.recovery
            if recovery is not None and recovery.recovered_anything:
                line += (
                    f"; recovered adopted={recovery.adopted} "
                    f"resubmitted={recovery.resubmitted} "
                    f"restored={recovery.restored}"
                )
            print(line, flush=True)

    asyncio.run(
        serve(
            service,
            host,
            port,
            metrics_port=metrics_port,
            on_ready=announce,
        )
    )
    print("repro-serve drained cleanly", flush=True)


class ServerHandle:
    """A server running on a background thread (tests, benchmarks)."""

    def __init__(
        self, service: ProcessLockingService, host: str, port: int
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Bound sidecar port, or ``None`` when no sidecar runs.
        self.metrics_port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    def stop(self) -> None:
        """Trigger the graceful-drain path and join the thread."""
        if self._loop is not None and self._shutdown is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=30)


def start_server_thread(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_port: int | None = None,
) -> ServerHandle:
    """Run a full server on a daemon thread; returns once bound."""
    service = ProcessLockingService(config)
    handle = ServerHandle(service, host, port)
    ready = threading.Event()
    failure: list[BaseException] = []

    def main() -> None:
        async def body() -> None:
            handle._loop = asyncio.get_running_loop()
            handle._shutdown = asyncio.Event()

            def on_ready(bound_host: str, bound_port: int) -> None:
                handle.host = bound_host
                handle.port = bound_port
                sidecar = service.sidecar
                handle.metrics_port = (
                    sidecar.port if sidecar is not None else None
                )
                ready.set()

            await serve(
                service,
                host,
                port,
                metrics_port=metrics_port,
                on_ready=on_ready,
                shutdown=handle._shutdown,
            )

        try:
            asyncio.run(body())
        except BaseException as exc:  # surfaced via ready-wait below
            failure.append(exc)
            ready.set()

    handle._thread = threading.Thread(
        target=main, name="repro-serve", daemon=True
    )
    handle._thread.start()
    ready.wait(timeout=30)
    if failure:
        raise failure[0]
    return handle
