"""Cascade-avoiding scheduling (the ACA endpoint of Section 4's spectrum).

The paper (Section 3.2.3, citing Breitbart et al.) observes that at
activity granularity — where a shared/exclusive distinction is
unavailable — avoiding cascading aborts *degenerates to rigorousness*:
no conflicting lock may ever be shared, which is exactly exclusive
strict two-phase locking.  The baseline is therefore implemented as
:class:`~repro.baselines.s2pl.StrictTwoPhaseLocking` under wound-wait,
re-exported under its conceptual name so experiments can refer to the
"ACA" comparator the paper argues against.

(The cost-based extension reaches a *more* restrictive point than this
at ``Wcc* = 0``: every activity is pivot-treated and the literal
Piv-Rule serializes P-lock holders globally.)
"""

from __future__ import annotations

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.baselines.s2pl import StrictTwoPhaseLocking


class CascadeAvoidingScheduler(StrictTwoPhaseLocking):
    """Rigorous scheduling: no lock sharing, hence no cascades, ever."""

    def __init__(
        self, registry: ActivityRegistry, conflicts: ConflictMatrix
    ) -> None:
        super().__init__(registry, conflicts, variant="wound-wait")
