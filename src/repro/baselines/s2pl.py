"""Strict two-phase locking with exclusive activity-type locks.

The paper's Section 1 strawman: because activities are semantic black
boxes, a shared/exclusive distinction is unavailable and every activity
lock must be exclusive.  Combined with strict 2PL this serializes every
pair of conflicting processes for their entire lifetime — the concurrency
loss process locking was designed to avoid.

Deadlock handling is timestamp-based, in one of two variants:

* ``"wound-wait"`` (default): an older requester *wounds* (aborts) younger
  running holders, which are resubmitted with their original timestamps;
  a younger requester waits for older holders.  Waits point young→old, so
  cycles among running processes cannot form.
* ``"wait-die"``: a younger requester dies (aborts itself) when blocked by
  an older holder, an older requester waits for younger holders.  Classic,
  but in a discrete-event setting the repeated die/retry loop burns many
  resubmissions; kept for comparison.

S2PL has no notion of pivot protection: *completing* processes (past their
point of no return) can be blocked by — and can deadlock with — other
completing processes.  They can be neither wounded nor died; such requests
wait, and genuinely unresolvable cycles are escalated to the manager's
forced-progress path and counted as violations.  This weakness is part of
what the paper's protocol fixes.
"""

from __future__ import annotations

from repro.activities.activity import Activity
from repro.baselines.base import BaselineProtocol
from repro.core.decisions import (
    AbortVictims,
    Decision,
    Defer,
    Grant,
    SelfAbort,
)
from repro.core.locks import LockMode
from repro.errors import ProtocolError
from repro.process.instance import Process
from repro.process.state import ProcessState


class StrictTwoPhaseLocking(BaselineProtocol):
    """Exclusive conflict-based activity locks, held to process end."""

    #: Completing-vs-completing deadlocks have no correct resolution under
    #: plain S2PL; let the manager force progress and count the violation.
    forced_commit_on_unresolvable = True

    def __init__(
        self, registry, conflicts, variant: str = "wound-wait"
    ) -> None:
        super().__init__(registry, conflicts)
        if variant not in ("wound-wait", "wait-die"):
            raise ProtocolError(
                f"unknown S2PL variant {variant!r}; use 'wound-wait' or "
                "'wait-die'"
            )
        self.variant = variant

    def request_activity_lock(
        self, process: Process, activity: Activity, mode: LockMode
    ) -> Decision:
        conflicting = self.table.conflicting_locks(
            activity.name, exclude_pid=process.pid
        )
        if not conflicting:
            return self._grant(process, activity)
        running = {
            e.pid
            for e in conflicting
            if e.process.state is ProcessState.RUNNING
        }
        unabortable = {
            e.pid for e in conflicting if e.pid not in running
        }
        if self.variant == "wound-wait":
            if process.state is ProcessState.COMPLETING:
                # Cannot be made to wait forever nor abort itself; wound
                # whatever is woundable, wait for the rest.
                if running:
                    return self._wound(running)
                return self._wait(unabortable, "s2pl-completing-wait")
            older_running = {
                pid
                for pid in running
                if self._processes[pid].timestamp < process.timestamp
            }
            younger_running = running - older_running
            if younger_running:
                return self._wound(younger_running)
            return self._wait(
                older_running | unabortable, "s2pl-wait"
            )
        # wait-die
        if process.state is ProcessState.COMPLETING:
            return self._wait(
                running | unabortable, "s2pl-completing-wait"
            )
        older = {
            e.pid
            for e in conflicting
            if e.timestamp < process.timestamp
        }
        if older:
            self.stats.note_defer("s2pl-die")
            return SelfAbort(reason="wait-die")
        return self._wait(running | unabortable, "s2pl-wait")

    def request_compensation_lock(
        self, process: Process, activity: Activity
    ) -> Decision:
        """Exclusive lock for the compensation; waits, never aborts.

        Under pure exclusion a conflicting holder cannot normally exist
        while the aborting process still holds the original lock; waits
        here are defensive, and cycles are broken by the manager.
        """
        conflicting = self.table.conflicting_locks(
            activity.name, exclude_pid=process.pid
        )
        if conflicting:
            return self._wait(
                {e.pid for e in conflicting}, "s2pl-compensation-wait"
            )
        return self._grant(process, activity)

    def try_commit(self, process: Process) -> Decision:
        # Nothing is ever shared, so nothing is ever on hold.
        self.stats.commits += 1
        return Grant()

    def force_grant_regular(
        self, process: Process, activity: Activity
    ) -> Decision:
        """Escape hatch for completing-vs-completing deadlocks.

        Grants the lock despite the conflict; the manager counts the
        event as an unresolvable violation.  Process locking never needs
        this — its completing token excludes the situation.
        """
        return self._grant(process, activity)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _grant(self, process: Process, activity: Activity) -> Grant:
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def _wait(self, blockers: set[int], reason: str) -> Defer:
        self.stats.note_defer(reason)
        return Defer(wait_for=frozenset(blockers), reason=reason)

    def _wound(self, victims: set[int]) -> AbortVictims:
        self.stats.cascades_requested += 1
        self.stats.cascade_victims += len(victims)
        return AbortVictims(victims=frozenset(victims))
