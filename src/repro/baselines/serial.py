"""Serial execution: one process at a time.

The simplest correct scheduler — and the degenerate lower bound for every
concurrency experiment.  A single global token admits one process; all
others defer until the owner terminates.
"""

from __future__ import annotations

from repro.activities.activity import Activity
from repro.baselines.base import BaselineProtocol
from repro.core.decisions import Decision, Defer, Grant
from repro.core.locks import LockMode
from repro.process.instance import Process


class SerialScheduler(BaselineProtocol):
    """Global-token scheduler: fully serial process execution."""

    def __init__(self, registry, conflicts) -> None:
        super().__init__(registry, conflicts)
        self._owner: int | None = None

    def _admit(self, process: Process) -> bool:
        if self._owner is None:
            self._owner = process.pid
        return self._owner == process.pid

    def request_activity_lock(
        self, process: Process, activity: Activity, mode: LockMode
    ) -> Decision:
        if not self._admit(process):
            self.stats.note_defer("serial-token")
            return Defer(
                wait_for=frozenset({self._owner}), reason="serial-token"
            )
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def request_compensation_lock(
        self, process: Process, activity: Activity
    ) -> Decision:
        # Compensation only happens for the token owner (intrinsic abort).
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def try_commit(self, process: Process) -> Decision:
        self.stats.commits += 1
        return Grant()

    def detach(self, process: Process) -> None:
        super().detach(process)
        if self._owner == process.pid:
            self._owner = None
