"""Shared scaffolding for baseline scheduling protocols.

Baselines implement the same decision interface as
:class:`repro.core.protocol.ProcessLockManager`, so the process manager
can drive any of them unchanged:

* ``new_timestamp() / attach() / detach()``
* ``classify_regular(process, activity) -> LockMode``
* ``request_activity_lock(process, activity, mode) -> Decision``
* ``request_compensation_lock(process, activity) -> Decision``
* ``try_commit(process) -> Decision``
* ``timestamps() / running_pids() / audit()``
"""

from __future__ import annotations

import itertools

from repro.activities.activity import Activity
from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.decisions import Decision, ProtocolStats
from repro.core.locks import LockMode
from repro.core.sharding import ShardedLockTable
from repro.obs import NULL_TRACER
from repro.obs.events import ActivityClassified
from repro.process.instance import Process
from repro.process.state import ProcessState


class BaselineProtocol:
    """Common state and helpers for baseline protocols."""

    #: Manager hint: break unresolvable wait cycles by force-committing a
    #: parked commit instead of raising (pure OSL sets this).
    forced_commit_on_unresolvable = False

    #: Observability hook, installed by the manager.  Decision outcomes
    #: are traced by the manager itself; baselines only emit their
    #: Figure-1-equivalent classification so Wcc gauges stay comparable
    #: across protocols.
    tracer = NULL_TRACER

    def __init__(
        self, registry: ActivityRegistry, conflicts: ConflictMatrix
    ) -> None:
        self.registry = registry
        self.conflicts = conflicts
        self.table = ShardedLockTable(conflicts)
        self.stats = ProtocolStats()
        self._timestamps = itertools.count(1)
        self._processes: dict[int, Process] = {}

    # ------------------------------------------------------------------
    # lifecycle (identical across baselines)
    # ------------------------------------------------------------------
    def new_timestamp(self) -> int:
        return next(self._timestamps)

    def attach(self, process: Process) -> None:
        self._processes[process.pid] = process

    def detach(self, process: Process) -> None:
        self.table.release_all(process.pid)
        self._processes.pop(process.pid, None)

    def timestamps(self) -> dict[int, int]:
        return {
            pid: proc.timestamp for pid, proc in self._processes.items()
        }

    def running_pids(self) -> set[int]:
        return {
            pid
            for pid, proc in self._processes.items()
            if proc.state is ProcessState.RUNNING
        }

    def live_processes(self) -> list[Process]:
        return list(self._processes.values())

    def audit(self, shards=None) -> None:
        if shards is None:
            self.table.check_invariants(self._processes)
        else:
            self.table.check_invariants(self._processes, shards=shards)

    # ------------------------------------------------------------------
    # defaults
    # ------------------------------------------------------------------
    def classify_regular(
        self, process: Process, activity: Activity
    ) -> LockMode:
        """Charge Wcc (for comparable metrics) and pick the lock mode.

        Baselines have no cost-based extension; only real points of no
        return are pivot-treated.
        """
        activity_type = activity.activity_type
        process.charge_wcc(
            activity_type.cost
            + self.registry.compensation_cost(activity_type.name)
        )
        real_pivot = activity_type.point_of_no_return
        mode = LockMode.P if real_pivot else LockMode.C
        if self.tracer.enabled:
            self.tracer.emit(
                ActivityClassified(
                    pid=process.pid,
                    incarnation=process.incarnation,
                    activity=activity.name,
                    mode=mode.value,
                    wcc=process.wcc,
                    threshold=process.program.wcc_threshold,
                    pseudo_pivot=False,
                    real_pivot=real_pivot,
                )
            )
        return mode

    # Subclasses must implement:
    def request_activity_lock(
        self, process: Process, activity: Activity, mode: LockMode
    ) -> Decision:
        raise NotImplementedError

    def request_compensation_lock(
        self, process: Process, activity: Activity
    ) -> Decision:
        raise NotImplementedError

    def try_commit(self, process: Process) -> Decision:
        raise NotImplementedError
