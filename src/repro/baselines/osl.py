"""Pure ordered shared locking (Agrawal/El Abbadi) without early
verification.

This is the protocol process locking extends: every lock is ordered shared
in plain arrival order, with no timestamp check and no C/P distinction.
The lock *relinquish rule* is kept — a process cannot commit while any of
its locks is on hold — so correct executions remain correct; but because
nothing stops a process from passing its point of no return while sharing
behind a running peer, two pathologies appear that the paper uses to
motivate process locking:

* **late aborts** — order violations surface only at commit time, after
  the work has been done;
* **unresolvable violations** — a cascading abort reaches a *completing*
  process, which cannot be rolled back; the simulation counts the event
  (``stats.unresolvable``) and lets the completing process proceed,
  modelling the semantic inconsistency a real deployment would suffer.

Commit-wait cycles among completing processes are likewise unresolvable;
the manager force-commits one participant and counts it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activities.activity import Activity
from repro.baselines.base import BaselineProtocol
from repro.core.decisions import (
    AbortVictims,
    Decision,
    Defer,
    Grant,
    ProtocolStats,
)
from repro.core.locks import LockMode
from repro.errors import ProtocolError
from repro.process.instance import Process
from repro.process.state import ProcessState


@dataclass
class OslStats(ProtocolStats):
    """Protocol counters plus the OSL-specific violation count."""

    unresolvable: int = 0


class PureOrderedSharedLocking(BaselineProtocol):
    """OSL with lock sharing in arrival order and late validation only."""

    forced_commit_on_unresolvable = True

    def __init__(self, registry, conflicts) -> None:
        super().__init__(registry, conflicts)
        self.stats = OslStats()

    def request_activity_lock(
        self, process: Process, activity: Activity, mode: LockMode
    ) -> Decision:
        # Ordered sharing is unconditional: the request is appended to the
        # lock list behind whatever is there, no questions asked.
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def request_compensation_lock(
        self, process: Process, activity: Activity
    ) -> Decision:
        original = self.table.entry_for_activity(
            process.pid, activity.compensates
        )
        if original is None:
            raise ProtocolError(
                f"P{process.pid}: compensated activity has no lock"
            )
        victims: set[int] = set()
        waits: set[int] = set()
        for entry in self.table.conflicting_locks(
            activity.name, exclude_pid=process.pid
        ):
            if entry.position <= original.position:
                continue
            holder = entry.process
            if holder.state is ProcessState.RUNNING:
                victims.add(holder.pid)
            elif holder.state is ProcessState.ABORTING:
                waits.add(holder.pid)
            else:
                # A completing process shared behind us: it cannot be
                # cascade-aborted.  Count the violation and proceed —
                # exactly the failure mode process locking prevents.
                self.stats.unresolvable += 1
        if victims:
            self.stats.cascades_requested += 1
            self.stats.cascade_victims += len(victims)
            return AbortVictims(victims=frozenset(victims))
        if waits:
            self.stats.note_defer("wait-aborting")
            return Defer(
                wait_for=frozenset(waits), reason="wait-aborting"
            )
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def force_grant_compensation(
        self, process: Process, activity: Activity
    ) -> Decision:
        """Grant a compensation lock out of order (unresolvable cycle).

        Pure OSL's arrival-order sharing can produce abort-wait cycles
        that have no correct resolution; the manager escalates here, the
        compensation proceeds despite later conflicting locks, and the
        violation is already counted by the caller.
        """
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def try_commit(self, process: Process) -> Decision:
        """Lock relinquish rule: no release while any lock is on hold."""
        blockers = {
            pid
            for pid in self.table.commit_blockers(process)
            if pid in self._processes
        }
        if blockers:
            self.stats.commit_defers += 1
            self.stats.note_defer("commit-on-hold")
            return Defer(
                wait_for=frozenset(blockers), reason="commit-on-hold"
            )
        self.stats.commits += 1
        return Grant()
