"""Baseline scheduling protocols for the comparison experiments."""

from repro.baselines.aca import CascadeAvoidingScheduler
from repro.baselines.base import BaselineProtocol
from repro.baselines.osl import OslStats, PureOrderedSharedLocking
from repro.baselines.s2pl import StrictTwoPhaseLocking
from repro.baselines.serial import SerialScheduler

__all__ = [
    "BaselineProtocol",
    "CascadeAvoidingScheduler",
    "OslStats",
    "PureOrderedSharedLocking",
    "SerialScheduler",
    "StrictTwoPhaseLocking",
]
