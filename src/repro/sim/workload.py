"""Synthetic workload generation.

A :class:`WorkloadSpec` describes a population of activity types, a
conflict relation, and a set of process programs; :func:`build_workload`
materializes it deterministically from the spec's seed.

Two conflict-relation modes exist:

* **declared** (default): conflicts are sampled pairwise within each
  subsystem with probability ``conflict_density`` — directly controllable,
  used by the parameter-sweep experiments;
* **grounded** (``grounded=True``): every activity type gets a concrete
  transaction program over its subsystem's records, and the conflict
  matrix is *derived* from the read/write sets — used by the substrate
  experiments (E7) and the integration tests that run activities against
  real stores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.activities.commutativity import (
    ConflictMatrix,
    derive_from_read_write_sets,
)
from repro.activities.registry import ActivityRegistry
from repro.process.builder import ProgramBuilder
from repro.process.program import ProcessProgram
from repro.sim.rng import derive_rng
from repro.subsystems.programs import (
    Operation,
    TransactionProgram,
    inverse_program,
)
from repro.subsystems.subsystem import SubsystemPool


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    n_processes: int = 8
    n_activity_types: int = 12
    n_subsystems: int = 3
    conflict_density: float = 0.3
    min_length: int = 3
    max_length: int = 6
    pivot_probability: float = 0.6
    alternative_count: int = 1
    parallel_probability: float = 0.0
    failure_probability: float = 0.05
    cost_range: tuple[float, float] = (1.0, 5.0)
    compensation_cost_range: tuple[float, float] = (0.5, 2.0)
    expensive_fraction: float = 0.0
    expensive_cost: float = 50.0
    retriable_tail: int = 2
    arrival_spacing: float = 0.0
    wcc_threshold: float = math.inf
    grounded: bool = False
    keys_per_subsystem: int = 8
    seed: int = 0

    def with_(self, **changes) -> "WorkloadSpec":
        """A copy of the spec with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class Workload:
    """A materialized workload ready to run under any protocol."""

    spec: WorkloadSpec
    registry: ActivityRegistry
    conflicts: ConflictMatrix
    programs: list[ProcessProgram]
    #: Names of "expensive" activity types (bimodal-cost workloads).
    expensive_types: set[str] = field(default_factory=set)
    #: Transaction programs per activity name (grounded workloads only).
    data_programs: dict[str, TransactionProgram] = field(
        default_factory=dict
    )

    def arrival_time(self, index: int) -> float:
        """Virtual arrival time of the ``index``-th process."""
        return index * self.spec.arrival_spacing

    def make_subsystems(
        self, durable: bool = False
    ) -> SubsystemPool | None:
        """A fresh subsystem pool (grounded workloads), else ``None``.

        ``durable`` backs every subsystem with a write-ahead log so the
        fault-injection harness can crash and WAL-recover them.
        """
        if not self.data_programs:
            return None
        pool = SubsystemPool()
        for activity_type in self.registry:
            pool.get_or_create(activity_type.subsystem, durable=durable)
        for name, program in self.data_programs.items():
            subsystem = pool.get(self.registry.get(name).subsystem)
            subsystem.register_program(name, program)
        return pool


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialize a workload from its spec, deterministically."""
    rng = derive_rng(spec.seed, "workload")
    registry = ActivityRegistry()
    expensive: set[str] = set()

    subsystem_of: dict[str, str] = {}
    compensatable: list[str] = []
    pivots: list[str] = []
    retriables: list[str] = []

    n_pivots = max(1, spec.n_activity_types // 6)
    n_retriables = max(2, spec.n_activity_types // 4)
    n_compensatable = max(
        1, spec.n_activity_types - n_pivots - n_retriables
    )

    def pick_cost() -> float:
        low, high = spec.cost_range
        return rng.uniform(low, high)

    def pick_comp_cost() -> float:
        low, high = spec.compensation_cost_range
        return rng.uniform(low, high)

    for index in range(n_compensatable):
        name = f"act{index:02d}"
        subsystem = f"sub{index % spec.n_subsystems}"
        subsystem_of[name] = subsystem
        cost = pick_cost()
        if rng.random() < spec.expensive_fraction:
            cost = spec.expensive_cost
            expensive.add(name)
        registry.define_compensatable(
            name,
            subsystem,
            cost=cost,
            compensation_cost=pick_comp_cost(),
            failure_probability=spec.failure_probability,
        )
    for index in range(n_pivots):
        name = f"piv{index:02d}"
        subsystem = f"sub{index % spec.n_subsystems}"
        subsystem_of[name] = subsystem
        registry.define_pivot(
            name,
            subsystem,
            cost=pick_cost(),
            failure_probability=spec.failure_probability / 2,
        )
        pivots.append(name)
    for index in range(n_retriables):
        name = f"ret{index:02d}"
        subsystem = f"sub{index % spec.n_subsystems}"
        subsystem_of[name] = subsystem
        registry.define_retriable(name, subsystem, cost=pick_cost())
        retriables.append(name)
    compensatable.extend(
        t.name
        for t in registry.regular_types()
        if t.compensatable
    )

    data_programs: dict[str, TransactionProgram] = {}
    if spec.grounded:
        conflicts = _grounded_conflicts(
            spec, rng, registry, subsystem_of, data_programs
        )
    else:
        conflicts = _declared_conflicts(spec, rng, registry)

    programs = [
        _build_program(
            spec, rng, index, registry, compensatable, pivots, retriables
        )
        for index in range(spec.n_processes)
    ]
    return Workload(
        spec=spec,
        registry=registry,
        conflicts=conflicts,
        programs=programs,
        expensive_types=expensive,
        data_programs=data_programs,
    )


def _declared_conflicts(
    spec: WorkloadSpec, rng, registry: ActivityRegistry
) -> ConflictMatrix:
    conflicts = ConflictMatrix(registry)
    regular = [t.name for t in registry.regular_types()]
    for i, first in enumerate(regular):
        for second in regular[i:]:
            if (
                registry.get(first).subsystem
                != registry.get(second).subsystem
            ):
                continue
            if rng.random() < spec.conflict_density:
                conflicts.declare_conflict(first, second)
    conflicts.close_perfect()
    return conflicts


def _grounded_conflicts(
    spec: WorkloadSpec,
    rng,
    registry: ActivityRegistry,
    subsystem_of: dict[str, str],
    data_programs: dict[str, TransactionProgram],
) -> ConflictMatrix:
    for activity_type in list(registry):
        if activity_type.is_compensation:
            continue
        name = activity_type.name
        subsystem = subsystem_of[name]
        n_ops = rng.randint(1, 3)
        ops = []
        for _ in range(n_ops):
            key = f"{subsystem}:k{rng.randrange(spec.keys_per_subsystem)}"
            if rng.random() < 0.5:
                ops.append(Operation.read(key))
            else:
                ops.append(Operation.write(key))
        program = TransactionProgram(name=name, operations=tuple(ops))
        data_programs[name] = program
        if activity_type.compensated_by is not None:
            data_programs[activity_type.compensated_by] = (
                inverse_program(
                    program, name=activity_type.compensated_by
                )
            )
    access = {
        name: (program.read_set, program.write_set)
        for name, program in data_programs.items()
        if not registry.get(name).is_compensation
    }
    return derive_from_read_write_sets(registry, access)


def _build_program(
    spec: WorkloadSpec,
    rng,
    index: int,
    registry: ActivityRegistry,
    compensatable: list[str],
    pivots: list[str],
    retriables: list[str],
) -> ProcessProgram:
    """One random process program with guaranteed termination.

    Shape: a body of compensatable steps (occasionally grouped into a
    parallel node), then — with probability ``pivot_probability`` — a
    pivot followed by ``alternative_count`` compensatable alternatives
    plus the mandatory assured (retriable) tail.
    """
    builder = ProgramBuilder(
        f"proc{index:03d}",
        registry,
        wcc_threshold=spec.wcc_threshold,
    )
    length = rng.randint(spec.min_length, spec.max_length)
    body_length = max(1, length - 1)
    position = 0
    while position < body_length:
        if (
            spec.parallel_probability > 0
            and len(compensatable) >= 2
            and position + 1 < body_length
            and rng.random() < spec.parallel_probability
        ):
            pair = rng.sample(compensatable, 2)
            builder.parallel(*pair)
            position += 2
        else:
            builder.step(rng.choice(compensatable))
            position += 1

    if pivots and rng.random() < spec.pivot_probability:
        builder.pivot(rng.choice(pivots))
        branches = []
        for _ in range(spec.alternative_count):
            alt_names = [
                rng.choice(compensatable)
                for _ in range(rng.randint(1, 2))
            ]

            def make_branch(names=tuple(alt_names)):
                def fill(nested: ProgramBuilder) -> None:
                    nested.sequence(*names)

                return fill

            branches.append(make_branch())
        tail_names = [
            rng.choice(retriables)
            for _ in range(max(1, spec.retriable_tail))
        ]

        def assured(nested: ProgramBuilder, names=tuple(tail_names)):
            nested.sequence(*names)

        branches.append(assured)
        builder.alternatives(*branches)
    return builder.build()
