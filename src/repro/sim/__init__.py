"""Workload generation, simulation running, and metric collection."""

from repro.sim.arrivals import (
    burst_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.sim.metrics import RunMetrics, aggregate, summarize
from repro.sim.rng import derive_rng, spread_seeds
from repro.sim.runner import (
    PROTOCOL_FACTORIES,
    compare_protocols,
    make_protocol,
    run_and_summarize,
    run_workload,
    schedule_of,
)
from repro.sim.workload import Workload, WorkloadSpec, build_workload

__all__ = [
    "PROTOCOL_FACTORIES",
    "RunMetrics",
    "Workload",
    "WorkloadSpec",
    "aggregate",
    "build_workload",
    "burst_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "compare_protocols",
    "derive_rng",
    "make_protocol",
    "run_and_summarize",
    "run_workload",
    "schedule_of",
    "spread_seeds",
    "summarize",
]
