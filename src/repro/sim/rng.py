"""Seeded randomness helpers.

All stochastic components draw from :class:`random.Random` instances
derived deterministically from a base seed and a stream label, so that
workload generation, failure sampling, and any future noise source can be
varied independently while keeping runs reproducible.
"""

from __future__ import annotations

import random
import zlib


def derive_rng(seed: int, stream: str) -> random.Random:
    """A :class:`random.Random` unique to ``(seed, stream)``."""
    mixed = (seed & 0xFFFFFFFF) ^ zlib.crc32(stream.encode("utf-8"))
    return random.Random(mixed)


def spread_seeds(seed: int, count: int) -> list[int]:
    """``count`` derived seeds for repetition sweeps."""
    rng = derive_rng(seed, "spread")
    return [rng.randrange(2**31) for _ in range(count)]
