"""Arrival processes for open-system experiments.

The closed-form experiments submit all processes at virtual time zero
(or evenly spaced).  The saturation experiment (E10) instead offers load
at a controlled rate; this module generates the arrival time series.
"""

from __future__ import annotations

from repro.sim.rng import derive_rng


def poisson_arrivals(
    rate: float, count: int, seed: int = 0
) -> list[float]:
    """``count`` arrival times with exponential inter-arrivals.

    ``rate`` is the offered load in processes per virtual time unit.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive (got {rate})")
    rng = derive_rng(seed, "poisson-arrivals")
    now = 0.0
    times = []
    for __ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def uniform_arrivals(spacing: float, count: int) -> list[float]:
    """Evenly spaced arrivals (``spacing`` time units apart)."""
    if spacing < 0:
        raise ValueError(
            f"arrival spacing must be >= 0 (got {spacing})"
        )
    return [index * spacing for index in range(count)]


def burst_arrivals(
    burst_size: int, burst_gap: float, count: int
) -> list[float]:
    """Bursty arrivals: groups of ``burst_size`` at the same instant."""
    if burst_size < 1:
        raise ValueError("burst size must be >= 1")
    return [
        (index // burst_size) * burst_gap for index in range(count)
    ]
