"""Metric extraction from simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.scheduler.manager import ManagerStats, RunResult


@dataclass(frozen=True)
class RunMetrics:
    """Flat summary of one simulation run."""

    protocol: str
    committed: int
    submitted: int
    makespan: float
    throughput: float
    mean_latency: float
    mean_concurrency: float
    protocol_aborts: int
    intrinsic_aborts: int
    subprocess_aborts: int
    resubmissions: int
    compensations: int
    compensated_cost: float
    deadlock_victims: int
    unresolvable_violations: int
    defers: int
    cascade_victims: int
    #: Lock-table operations the protocol performed (grants, conversions,
    #: deferments, commit checks) — the denominator for lock-ops/sec.
    lock_ops: int = 0
    #: Fault-injection counters (zero outside chaos runs): faults the
    #: injector forced, transient retries it caused, and manager
    #: crash/recover cycles survived.
    faults_injected: int = 0
    fault_retries: int = 0
    fault_recoveries: int = 0

    def fault_row(self) -> dict[str, float]:
        """Dictionary form for the chaos-campaign table."""
        return {
            "protocol": self.protocol,
            "committed": self.committed,
            "makespan": round(self.makespan, 2),
            "injected": self.faults_injected,
            "retries": self.fault_retries,
            "recoveries": self.fault_recoveries,
            "compensations": self.compensations,
            "resubmits": self.resubmissions,
        }

    def as_row(self) -> dict[str, float]:
        """Dictionary form for table rendering."""
        return {
            "protocol": self.protocol,
            "committed": self.committed,
            "makespan": round(self.makespan, 2),
            "throughput": round(self.throughput, 4),
            "latency": round(self.mean_latency, 2),
            "concurrency": round(self.mean_concurrency, 3),
            "cascades": self.cascade_victims,
            "resubmits": self.resubmissions,
            "comp_cost": round(self.compensated_cost, 1),
            "unresolvable": self.unresolvable_violations,
        }


def summarize(protocol_name: str, result: RunResult) -> RunMetrics:
    """Condense a :class:`RunResult` into a :class:`RunMetrics` row."""
    protocol_stats = result.protocol_stats
    unresolvable = getattr(protocol_stats, "unresolvable", 0)
    unresolvable += result.stats.unresolvable_violations
    return RunMetrics(
        protocol=protocol_name,
        committed=result.stats.committed,
        submitted=result.stats.submitted,
        makespan=result.makespan,
        throughput=result.throughput,
        mean_latency=result.mean_latency,
        mean_concurrency=result.mean_concurrency,
        protocol_aborts=result.stats.protocol_aborts,
        intrinsic_aborts=result.stats.intrinsic_aborts,
        subprocess_aborts=result.stats.subprocess_aborts,
        resubmissions=result.stats.resubmissions,
        compensations=result.stats.compensations,
        compensated_cost=result.stats.compensated_cost,
        deadlock_victims=result.stats.deadlock_victims,
        unresolvable_violations=unresolvable,
        defers=getattr(protocol_stats, "defers", 0),
        cascade_victims=getattr(protocol_stats, "cascade_victims", 0),
        lock_ops=lock_operations(protocol_stats),
    )


def merge_stats(
    parts: list[ManagerStats], submitted: int | None = None
) -> ManagerStats:
    """Sum counters across manager incarnations of one logical run.

    A recovered manager re-counts its adopted processes as submissions
    (each incarnation starts a fresh :class:`ManagerStats`), so the
    naive sum over-counts ``submitted``; callers that know the true
    population (``len(result.records)``) pass it via ``submitted``.
    """
    merged = ManagerStats()
    for part in parts:
        for spec in fields(ManagerStats):
            if spec.name.startswith("_"):
                continue
            setattr(
                merged,
                spec.name,
                getattr(merged, spec.name) + getattr(part, spec.name),
            )
    if submitted is not None:
        merged.submitted = submitted
    return merged


def summarize_chaos(protocol_name: str, chaos) -> RunMetrics:
    """Condense a fault-injected run (a ``ChaosRunResult``).

    Counters come from the incarnation-merged stats and the makespan is
    the incarnation-summed virtual time, so a run that survived manager
    crashes summarizes the whole logical execution, not just the final
    incarnation.
    """
    result = chaos.result
    stats = chaos.stats
    makespan = chaos.makespan
    protocol_stats = result.protocol_stats
    unresolvable = getattr(protocol_stats, "unresolvable", 0)
    unresolvable += stats.unresolvable_violations
    counters = chaos.counters
    return RunMetrics(
        protocol=protocol_name,
        committed=stats.committed,
        submitted=stats.submitted,
        makespan=makespan,
        throughput=stats.committed / makespan if makespan > 0 else 0.0,
        mean_latency=result.mean_latency,
        mean_concurrency=(
            stats.busy_area / makespan if makespan > 0 else 0.0
        ),
        protocol_aborts=stats.protocol_aborts,
        intrinsic_aborts=stats.intrinsic_aborts,
        subprocess_aborts=stats.subprocess_aborts,
        resubmissions=stats.resubmissions,
        compensations=stats.compensations,
        compensated_cost=stats.compensated_cost,
        deadlock_victims=stats.deadlock_victims,
        unresolvable_violations=unresolvable,
        defers=getattr(protocol_stats, "defers", 0),
        cascade_victims=getattr(protocol_stats, "cascade_victims", 0),
        lock_ops=lock_operations(protocol_stats),
        faults_injected=counters.injected_failures
        + counters.outages_started
        + counters.subsystem_crashes,
        fault_retries=counters.injected_retries,
        fault_recoveries=counters.manager_recoveries,
    )


def lock_operations(protocol_stats: object) -> int:
    """Total lock-table operations recorded by a protocol's counters."""
    return sum(
        getattr(protocol_stats, name, 0)
        for name in (
            "c_grants",
            "p_grants",
            "conversions",
            "defers",
            "commits",
            "aborts",
        )
    )


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for an empty list)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def aggregate(metrics: list[RunMetrics]) -> dict[str, float]:
    """Average the numeric fields of several runs (repetition sweeps)."""
    if not metrics:
        return {}
    return {
        "committed": mean([m.committed for m in metrics]),
        "throughput": mean([m.throughput for m in metrics]),
        "latency": mean([m.mean_latency for m in metrics]),
        "concurrency": mean([m.mean_concurrency for m in metrics]),
        "makespan": mean([m.makespan for m in metrics]),
        "cascades": mean([m.cascade_victims for m in metrics]),
        "resubmits": mean([m.resubmissions for m in metrics]),
        "comp_cost": mean([m.compensated_cost for m in metrics]),
        "unresolvable": mean(
            [m.unresolvable_violations for m in metrics]
        ),
        "deadlock_victims": mean([m.deadlock_victims for m in metrics]),
        "lock_ops": mean([m.lock_ops for m in metrics]),
        "faults_injected": mean([m.faults_injected for m in metrics]),
        "fault_retries": mean([m.fault_retries for m in metrics]),
        "fault_recoveries": mean(
            [m.fault_recoveries for m in metrics]
        ),
    }
