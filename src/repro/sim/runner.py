"""Run workloads under any protocol and collect results.

The runner is the experiment entry point used by examples, tests, and the
benchmark harness: it instantiates a protocol by name, drives all of a
workload's programs through a fresh :class:`ProcessManager`, optionally
checks the resulting schedule against the theory oracles, and returns a
:class:`RunResult` / :class:`RunMetrics` pair.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.aca import CascadeAvoidingScheduler
from repro.baselines.osl import PureOrderedSharedLocking
from repro.baselines.s2pl import StrictTwoPhaseLocking
from repro.baselines.serial import SerialScheduler
from repro.core.protocol import ProcessLockManager
from repro.errors import SchedulerError
from repro.scheduler.manager import (
    ManagerConfig,
    ProcessManager,
    RunResult,
)
from repro.sim.metrics import RunMetrics, summarize
from repro.sim.workload import Workload
from repro.theory.schedule import ProcessSchedule

#: Registry of runnable protocols: name -> factory(registry, conflicts).
PROTOCOL_FACTORIES: dict[str, Callable] = {
    "process-locking": lambda reg, con: ProcessLockManager(
        reg, con, cost_based=True
    ),
    "process-locking-basic": lambda reg, con: ProcessLockManager(
        reg, con, cost_based=False
    ),
    "s2pl": StrictTwoPhaseLocking,
    "osl-pure": PureOrderedSharedLocking,
    "serial": SerialScheduler,
    "aca": CascadeAvoidingScheduler,
}


def make_protocol(name: str, workload: Workload):
    """Instantiate the named protocol over the workload's relation."""
    try:
        factory = PROTOCOL_FACTORIES[name]
    except KeyError:
        raise SchedulerError(
            f"unknown protocol {name!r}; choose from "
            f"{sorted(PROTOCOL_FACTORIES)}"
        ) from None
    return factory(workload.registry, workload.conflicts)


def run_workload(
    workload: Workload,
    protocol_name: str = "process-locking",
    seed: int = 0,
    config: ManagerConfig | None = None,
    arrivals: list[float] | None = None,
) -> RunResult:
    """Execute every program of ``workload`` under one protocol.

    ``arrivals`` overrides the workload's built-in arrival times (see
    :mod:`repro.sim.arrivals` for generators); it must provide one time
    per program.
    """
    if arrivals is not None and len(arrivals) != len(workload.programs):
        raise SchedulerError(
            f"{len(arrivals)} arrival times for "
            f"{len(workload.programs)} programs"
        )
    protocol = make_protocol(protocol_name, workload)
    manager = ProcessManager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
    )
    for index, program in enumerate(workload.programs):
        at = (
            arrivals[index]
            if arrivals is not None
            else workload.arrival_time(index)
        )
        manager.submit(program, at=at)
    return manager.run()


def run_and_summarize(
    workload: Workload,
    protocol_name: str = "process-locking",
    seed: int = 0,
    config: ManagerConfig | None = None,
) -> tuple[RunResult, RunMetrics]:
    """Run a workload and return both the raw result and its summary."""
    result = run_workload(workload, protocol_name, seed=seed, config=config)
    return result, summarize(protocol_name, result)


def compare_protocols(
    workload: Workload,
    protocol_names: list[str],
    seed: int = 0,
    config: ManagerConfig | None = None,
) -> dict[str, RunMetrics]:
    """Run the same workload under several protocols (fresh state each)."""
    rows: dict[str, RunMetrics] = {}
    for name in protocol_names:
        __, metrics = run_and_summarize(
            workload, name, seed=seed, config=config
        )
        rows[name] = metrics
    return rows


def schedule_of(workload: Workload, result: RunResult) -> ProcessSchedule:
    """The observed schedule of a run, ready for the theory oracles."""
    return result.trace.to_schedule(workload.conflicts.conflict)
