"""Run workloads under any protocol and collect results.

The runner is the experiment entry point used by examples, tests, and the
benchmark harness: it instantiates a protocol by name, drives all of a
workload's programs through a fresh :class:`ProcessManager`, optionally
checks the resulting schedule against the theory oracles, and returns a
:class:`RunResult` / :class:`RunMetrics` pair.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor

from repro import config as repro_config

from repro.baselines.aca import CascadeAvoidingScheduler
from repro.baselines.osl import PureOrderedSharedLocking
from repro.baselines.s2pl import StrictTwoPhaseLocking
from repro.baselines.serial import SerialScheduler
from repro.core.protocol import ProcessLockManager
from repro.errors import SchedulerError
from repro.scheduler.manager import (
    ManagerConfig,
    RunResult,
    make_manager,
)
from repro.sim.metrics import RunMetrics, summarize
from repro.sim.rng import spread_seeds
from repro.sim.workload import Workload, WorkloadSpec, build_workload
from repro.theory.schedule import ProcessSchedule

#: Environment knob for the seed-sweep worker pool: unset/1 = serial
#: (byte-identical to the historical loop), 0 = one worker per core,
#: N = at most N workers.
WORKERS_ENV = "REPRO_SEED_WORKERS"

#: Registry of runnable protocols: name -> factory(registry, conflicts).
PROTOCOL_FACTORIES: dict[str, Callable] = {
    "process-locking": lambda reg, con: ProcessLockManager(
        reg, con, cost_based=True
    ),
    "process-locking-basic": lambda reg, con: ProcessLockManager(
        reg, con, cost_based=False
    ),
    "s2pl": StrictTwoPhaseLocking,
    "osl-pure": PureOrderedSharedLocking,
    "serial": SerialScheduler,
    "aca": CascadeAvoidingScheduler,
}


def make_protocol(name: str, workload: Workload):
    """Instantiate the named protocol over the workload's relation."""
    try:
        factory = PROTOCOL_FACTORIES[name]
    except KeyError:
        raise SchedulerError(
            f"unknown protocol {name!r}; choose from "
            f"{sorted(PROTOCOL_FACTORIES)}"
        ) from None
    return factory(workload.registry, workload.conflicts)


def run_workload(
    workload: Workload,
    protocol_name: str = "process-locking",
    seed: int = 0,
    config: ManagerConfig | None = None,
    arrivals: list[float] | None = None,
    tracer=None,
) -> RunResult:
    """Execute every program of ``workload`` under one protocol.

    ``arrivals`` overrides the workload's built-in arrival times (see
    :mod:`repro.sim.arrivals` for generators); it must provide one time
    per program.  ``tracer`` (a :class:`repro.obs.Tracer`) records the
    run's decision events; omitted, tracing is disabled and the run is
    byte-identical to an uninstrumented one.
    """
    if arrivals is not None and len(arrivals) != len(workload.programs):
        raise SchedulerError(
            f"{len(arrivals)} arrival times for "
            f"{len(workload.programs)} programs"
        )
    protocol = make_protocol(protocol_name, workload)
    manager = make_manager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
        tracer=tracer,
    )
    for index, program in enumerate(workload.programs):
        at = (
            arrivals[index]
            if arrivals is not None
            else workload.arrival_time(index)
        )
        manager.submit(program, at=at)
    return manager.run()


def run_and_summarize(
    workload: Workload,
    protocol_name: str = "process-locking",
    seed: int = 0,
    config: ManagerConfig | None = None,
) -> tuple[RunResult, RunMetrics]:
    """Run a workload and return both the raw result and its summary."""
    result = run_workload(workload, protocol_name, seed=seed, config=config)
    return result, summarize(protocol_name, result)


def compare_protocols(
    workload: Workload,
    protocol_names: list[str],
    seed: int = 0,
    config: ManagerConfig | None = None,
) -> dict[str, RunMetrics]:
    """Run the same workload under several protocols (fresh state each)."""
    rows: dict[str, RunMetrics] = {}
    for name in protocol_names:
        __, metrics = run_and_summarize(
            workload, name, seed=seed, config=config
        )
        rows[name] = metrics
    return rows


def _resolve_workers(max_workers: int | None, n_jobs: int) -> int:
    """Effective pool size: explicit arg beats the environment knob.

    Resolution itself lives in :mod:`repro.config` (override > env >
    default); 0 still means one worker per core.
    """
    max_workers = repro_config.seed_workers(max_workers)
    if max_workers == 0:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, n_jobs))


def _seed_job(
    job: tuple[WorkloadSpec, str, int, ManagerConfig | None],
) -> RunMetrics:
    """One (spec, protocol, seed) run — module-level so it pickles."""
    spec, protocol_name, seed, config = job
    workload = build_workload(spec.with_(seed=seed))
    result = run_workload(workload, protocol_name, seed=seed, config=config)
    return summarize(protocol_name, result)


def _map_jobs(jobs: list, max_workers: int | None) -> list[RunMetrics]:
    """Run seed jobs serially or over a process pool, preserving order.

    ``executor.map`` yields results in submission order, so the parallel
    path returns exactly what the serial loop would; each worker process
    builds its own workload and manager, so runs share no state.
    """
    workers = _resolve_workers(max_workers, len(jobs))
    if workers <= 1:
        return [_seed_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_seed_job, jobs))


def run_protocol_over_seeds(
    spec: WorkloadSpec,
    protocol_name: str,
    seeds: list[int] | None = None,
    seed: int = 0,
    repetitions: int = 4,
    config: ManagerConfig | None = None,
    max_workers: int | None = None,
) -> list[RunMetrics]:
    """Run seed-varied builds of one workload spec, one row per seed.

    ``seeds`` wins when given; otherwise ``repetitions`` seeds are
    spread from ``seed``.  ``max_workers`` (or ``REPRO_SEED_WORKERS``)
    > 1 fans the runs out over a process pool; results are identical to
    the serial loop either way, since every run is an isolated
    fixed-seed simulation.
    """
    if seeds is None:
        seeds = spread_seeds(seed, repetitions)
    jobs = [(spec, protocol_name, s, config) for s in seeds]
    return _map_jobs(jobs, max_workers)


def compare_protocols_over_seeds(
    spec: WorkloadSpec,
    protocol_names: list[str],
    seeds: list[int] | None = None,
    seed: int = 0,
    repetitions: int = 4,
    config: ManagerConfig | None = None,
    max_workers: int | None = None,
) -> dict[str, list[RunMetrics]]:
    """Seed-averaged :func:`compare_protocols`: every protocol is run
    over the same seed list and the per-seed metric rows are returned
    grouped by protocol (in input order)."""
    if seeds is None:
        seeds = spread_seeds(seed, repetitions)
    jobs = [
        (spec, name, s, config)
        for name in protocol_names
        for s in seeds
    ]
    results = _map_jobs(jobs, max_workers)
    grouped: dict[str, list[RunMetrics]] = {}
    for (__, name, *_), metrics in zip(jobs, results):
        grouped.setdefault(name, []).append(metrics)
    return grouped


def schedule_of(workload: Workload, result: RunResult) -> ProcessSchedule:
    """The observed schedule of a run, ready for the theory oracles."""
    return result.trace.to_schedule(workload.conflicts.conflict)
