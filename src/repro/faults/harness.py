"""Chaos harness: sweep fault plans × workloads × protocols.

One campaign runs every combination and asserts, per run, the paper's
end-to-end guarantees *under faults*:

* **termination** — every process reaches an acceptable terminal state
  (the observed schedule is complete; the simulation reached
  quiescence);
* **CT** — the complete schedule has correct termination
  (Definition 6 / Theorem 1), checked in strided prefixes;
* **P-RC** — the schedule is process-recoverable (Definition 7 /
  Theorem 2);
* **splice** — after every manager crash the recovered trace continued
  the pre-crash trace exactly;
* **WAL** — subsystem crash recovery left no losers in the write-ahead
  log and rolled every doomed write back to its before-image.

Every decision in a campaign derives from ``(plan, seed)``, so two
campaigns with the same seed produce byte-identical fault schedules and
(uid-renumbered) traces — the determinism tests assert exactly that.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import SchedulerError, StarvationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ActivityFailures,
    FaultPlan,
    InjectedLatency,
    ManagerCrash,
    RetrySpec,
    SubsystemCrash,
    SubsystemOutage,
    compile_plan,
)
from repro.scheduler.manager import ManagerConfig
from repro.sim.metrics import RunMetrics, summarize_chaos
from repro.sim.workload import Workload, WorkloadSpec, build_workload
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)

#: Campaign protocols.  All three guarantee CT/P-RC, so the harness can
#: assert the theory oracles for every run; the other baselines (s2pl,
#: osl-pure, aca) intentionally violate them and are exercised
#: elsewhere.
DEFAULT_PROTOCOLS = (
    "process-locking",
    "process-locking-basic",
    "serial",
)


def canonical_trace(events) -> str:
    """Byte-stable serialization of a list of schedule events.

    Activity uids come from a process-global counter; remapping them to
    first-appearance order makes traces comparable across runs within
    one interpreter.
    """
    renumber: dict[int, int] = {}

    def canon(uid):
        if uid is None or uid == 0:
            return uid
        return renumber.setdefault(uid, len(renumber) + 1)

    return json.dumps(
        [
            (
                event.position,
                str(event.process),
                event.kind.value,
                event.name,
                canon(event.uid),
                canon(event.compensates),
            )
            for event in events
        ],
        separators=(",", ":"),
    )


def trace_digest(events) -> str:
    """Short hex digest of the canonical trace."""
    return hashlib.sha256(
        canonical_trace(events).encode()
    ).hexdigest()[:16]


# ----------------------------------------------------------------------
# one run
# ----------------------------------------------------------------------
@dataclass
class ChaosRunReport:
    """Outcome of one fault-injected run with its invariant verdicts."""

    plan: str
    workload: str
    protocol: str
    seed: int
    #: Canonical form of the compiled fault schedule (byte-stable).
    schedule_canonical: str
    checks: dict[str, bool] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    metrics: RunMetrics | None = None
    trace_digest: str = ""
    incarnations: int = 1
    dropped_injections: int = 0
    #: Simulation events processed across every incarnation.
    events: int = 0
    #: Retry budgets that forced a failing retriable to succeed.
    retry_budget_exhausted: int = 0
    #: Admissions the resilience layer deferred (0 without a layer).
    admissions_deferred: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_chaos(
    workload: Workload,
    protocol_name: str,
    plan: FaultPlan,
    seed: int = 0,
    workload_name: str = "",
    config: ManagerConfig | None = None,
    ct_stride: int = 5,
) -> ChaosRunReport:
    """Run one plan against one workload/protocol and check invariants."""
    schedule = compile_plan(plan, seed)
    report = ChaosRunReport(
        plan=plan.name,
        workload=workload_name or f"seed{workload.spec.seed}",
        protocol=protocol_name,
        seed=seed,
        schedule_canonical=schedule.canonical(),
    )
    injector = FaultInjector(
        workload, protocol_name, schedule, config=config, seed=seed
    )
    try:
        chaos = injector.run()
    except (SchedulerError, StarvationError) as exc:
        report.checks["terminated"] = False
        report.failures.append(f"liveness: {exc}")
        return report
    observed = chaos.result.trace.to_schedule(
        workload.conflicts.conflict
    )
    report.checks["terminated"] = observed.is_complete
    report.checks["ct"] = observed.is_complete and has_correct_termination(
        observed, stride=ct_stride
    )
    report.checks["prc"] = is_process_recoverable(observed)
    report.checks["splice"] = chaos.splice_ok
    report.checks["wal"] = all(check.ok for check in chaos.wal_checks)
    report.failures = [
        name for name, passed in report.checks.items() if not passed
    ]
    report.metrics = summarize_chaos(protocol_name, chaos)
    report.trace_digest = trace_digest(chaos.result.trace.events)
    report.incarnations = chaos.incarnations
    report.dropped_injections = chaos.counters.dropped_injections
    report.events = chaos.events
    report.retry_budget_exhausted = (
        chaos.counters.retry_budget_exhausted
    )
    report.admissions_deferred = chaos.stats.admissions_deferred
    return report


# ----------------------------------------------------------------------
# the default campaign
# ----------------------------------------------------------------------
def default_plans(quick: bool = False) -> list[FaultPlan]:
    """The stock fault plans: a control plus one per fault family."""
    plans = [
        FaultPlan(name="baseline"),
        FaultPlan(
            name="failures",
            failures=ActivityFailures(
                rate_scale=3.0, transient_prob=0.25
            ),
            retry=RetrySpec(kind="exponential", max_attempts=4),
        ),
        FaultPlan(
            name="outages",
            outages=(
                SubsystemOutage("sub0", at_event=30, duration=25.0),
                SubsystemOutage("sub1", at_event=70, duration=15.0),
            ),
            retry=RetrySpec(kind="fixed", base_delay=2.0),
        ),
        FaultPlan(
            name="crashes",
            subsystem_crashes=(
                SubsystemCrash("sub0", at_event=40),
            ),
            manager_crashes=(
                ManagerCrash(at_event=20),
                ManagerCrash(at_event=60),
            ),
            latency=InjectedLatency(extra=0.5, jitter=0.5),
        ),
        FaultPlan(
            name="mayhem",
            failures=ActivityFailures(
                rate_scale=2.0, transient_prob=0.15
            ),
            outages=(
                SubsystemOutage("sub1", at_event=35, duration=20.0),
            ),
            subsystem_crashes=(
                SubsystemCrash("sub2", at_event=55),
            ),
            manager_crashes=(ManagerCrash(at_event=25),),
            latency=InjectedLatency(extra=0.25, jitter=1.0),
            retry=RetrySpec(
                kind="jittered", jitter=0.5, max_attempts=5
            ),
        ),
    ]
    if quick:
        return [p for p in plans if p.name in ("failures", "crashes")]
    return plans


def default_workloads(
    seed: int, quick: bool = False
) -> dict[str, Workload]:
    """The stock campaign workloads, materialized once per campaign."""
    specs = {
        "small": WorkloadSpec(n_processes=6, seed=seed),
        "dense-parallel": WorkloadSpec(
            n_processes=8,
            conflict_density=0.5,
            parallel_probability=0.4,
            alternative_count=2,
            seed=seed + 1,
        ),
        # Pivot always taken with no alternatives: the retriable tail
        # always executes, exercising transient retries and backoff.
        "cost-threshold": WorkloadSpec(
            n_processes=6,
            wcc_threshold=25.0,
            pivot_probability=1.0,
            alternative_count=0,
            retriable_tail=3,
            seed=seed + 2,
        ),
        "grounded-durable": WorkloadSpec(
            n_processes=6,
            grounded=True,
            seed=seed + 3,
        ),
    }
    if quick:
        specs = {
            name: spec
            for name, spec in specs.items()
            if name in ("small", "grounded-durable")
        }
    return {name: build_workload(spec) for name, spec in specs.items()}


@dataclass
class CampaignReport:
    """All runs of one chaos campaign."""

    seed: int
    runs: list[ChaosRunReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def failed(self) -> list[ChaosRunReport]:
        return [run for run in self.runs if not run.ok]

    def counts(self) -> dict[str, int]:
        return {
            "runs": len(self.runs),
            "passed": sum(1 for run in self.runs if run.ok),
            "failed": len(self.failed),
            "recoveries": sum(run.incarnations - 1 for run in self.runs),
            "injected": sum(
                run.metrics.faults_injected for run in self.runs
            ),
            "retries": sum(
                run.metrics.fault_retries for run in self.runs
            ),
            "dropped_injections": sum(
                run.dropped_injections for run in self.runs
            ),
        }


def run_campaign(
    seed: int = 0,
    quick: bool = False,
    protocols: tuple[str, ...] | None = None,
    config: ManagerConfig | None = None,
    ct_stride: int = 5,
) -> CampaignReport:
    """Sweep plans × workloads × protocols and check every invariant.

    The full campaign is 5 plans × 4 workloads × 3 protocols = 60 runs;
    ``quick`` trims it to 2 × 2 × len(protocols) for CI smoke use.
    """
    protocols = protocols or DEFAULT_PROTOCOLS
    plans = default_plans(quick=quick)
    workloads = default_workloads(seed, quick=quick)
    report = CampaignReport(seed=seed)
    for plan in plans:
        for workload_name, workload in workloads.items():
            for protocol_name in protocols:
                report.runs.append(
                    run_chaos(
                        workload,
                        protocol_name,
                        plan,
                        seed=seed,
                        workload_name=workload_name,
                        config=config,
                        ct_stride=ct_stride,
                    )
                )
    return report
