"""Correlated-outage storms, including ``Wcc*``-boundary targeting.

A *storm* is a burst train of :class:`CorrelatedOutage` groups — the
fault shape that actually breaks protocols in the replication
literature: not one independent subsystem blinking, but a whole group
going dark repeatedly while retry traffic piles up.

:func:`threshold_boundary_storm` aims the storm at the paper's
cost-based seam.  It walks each program's preferred path with the
Figure-1 cost model to find the subsystems whose activities cross the
``Wcc*`` threshold (the *pseudo-pivot frontier*); downing exactly those
subsystems maximizes cascading-abort pressure right where the
cost-based extension decides between optimism (C locks, compensatable)
and protection (P locks, pseudo pivots).
"""

from __future__ import annotations

from repro.core.cost_based import is_pseudo_pivot, wcc_after
from repro.faults.plan import (
    ActivityFailures,
    CorrelatedOutage,
    FaultPlan,
    RetrySpec,
)
from repro.sim.workload import Workload


def outage_storm(
    subsystems: tuple[str, ...],
    start_event: int = 20,
    bursts: int = 3,
    spacing: int = 25,
    duration: float = 12.0,
    stagger: float = 1.0,
) -> tuple[CorrelatedOutage, ...]:
    """A burst train: ``bursts`` correlated outages, ``spacing`` apart."""
    return tuple(
        CorrelatedOutage(
            subsystems=subsystems,
            at_event=start_event + burst * spacing,
            duration=duration,
            stagger=stagger,
        )
        for burst in range(bursts)
    )


def threshold_boundary_subsystems(
    workload: Workload,
) -> tuple[str, ...]:
    """Subsystems whose activities cross the ``Wcc*`` boundary.

    Walks each program's preferred path (first child at every node)
    accumulating Equation-2 cost; an activity for which
    :func:`is_pseudo_pivot` holds marks its subsystem as part of the
    pseudo-pivot frontier.  Programs with an infinite threshold never
    cross and contribute nothing.  Falls back to every subsystem when
    no program has a finite crossing (so the storm still fires).
    """
    registry = workload.registry
    frontier: set[str] = set()
    for program in workload.programs:
        threshold = program.wcc_threshold
        if threshold == float("inf"):
            continue
        wcc = 0.0
        node = program.root
        while node is not None:
            for name in node.activities:
                if is_pseudo_pivot(registry, wcc, name, threshold):
                    frontier.add(registry.get(name).subsystem)
                wcc = wcc_after(registry, wcc, name)
            node = node.children[0] if node.children else None
    if not frontier:
        frontier = {
            activity_type.subsystem for activity_type in registry
        }
    return tuple(sorted(frontier))


def threshold_boundary_storm(
    workload: Workload,
    name: str = "wcc-boundary-storm",
    start_event: int = 20,
    bursts: int = 3,
    spacing: int = 25,
    duration: float = 12.0,
    stagger: float = 1.0,
    transient_prob: float = 0.3,
) -> FaultPlan:
    """A fault plan aimed at the workload's ``Wcc*`` frontier.

    Correlated outages down the frontier subsystems in bursts while a
    transient-failure layer (scoped to the same subsystems) keeps
    retriable activities churning between bursts; the exponential retry
    budget bounds the churn so termination stays guaranteed.
    """
    targets = threshold_boundary_subsystems(workload)
    return FaultPlan(
        name=name,
        failures=ActivityFailures(
            rate_scale=1.5,
            transient_prob=transient_prob,
            subsystems=targets,
        ),
        correlated_outages=outage_storm(
            targets,
            start_event=start_event,
            bursts=bursts,
            spacing=spacing,
            duration=duration,
            stagger=stagger,
        ),
        retry=RetrySpec(kind="exponential", max_attempts=4),
    )
