"""Durability chaos: crash-at-any-byte damage against a real store.

The campaign materializes one durable run — a grounded workload driven
through :class:`~repro.server.service.ProcessLockingService` on a
``log``-backend :class:`~repro.storage.Store` — then attacks the files
it left behind, round by seeded round:

* **torn tail** — the log is truncated at an arbitrary byte offset
  (a kill -9 mid-``write``); reopening must heal deterministically,
  keeping exactly a *frame prefix* of the original records and never
  surfacing a partial record;
* **checksum corruption** — one byte inside a complete frame is
  flipped (bit rot, a bad sector); reading must raise the typed
  :class:`~repro.errors.WalCorruptionError` instead of decoding junk;
* **partial fsync loss** — whole tail frames disappear (a power cut
  after an acknowledged-but-unsynced batch); reopening must recover
  the surviving prefix cleanly.

Every assertion is structural — frame counts and payload equality
against the pristine file — so a failure pinpoints the byte-level
guarantee that broke, not a downstream symptom.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.errors import WalCorruptionError
from repro.storage.codec import HEADER_SIZE, scan_frames


@dataclass
class DurabilityRound:
    """One damage-and-recover round."""

    family: str
    namespace: str
    detail: str
    ok: bool
    failure: str = ""

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "namespace": self.namespace,
            "detail": self.detail,
            "ok": self.ok,
            "failure": self.failure,
        }


@dataclass
class DurabilityReport:
    """Outcome of a durability chaos campaign."""

    seed: int
    rounds: list[DurabilityRound] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(round_.ok for round_ in self.rounds)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "rounds": [round_.to_dict() for round_ in self.rounds],
        }

    def describe(self) -> str:
        lines = [
            f"durability chaos (seed={self.seed}): "
            f"{len(self.rounds)} rounds, "
            f"{'all passed' if self.ok else 'FAILURES'}"
        ]
        for round_ in self.rounds:
            status = "ok" if round_.ok else f"FAIL: {round_.failure}"
            lines.append(
                f"  [{round_.family}] {round_.namespace}: "
                f"{round_.detail} -> {status}"
            )
        return "\n".join(lines)


def _populate_store(path: str, seed: int, processes: int) -> None:
    """Run a grounded workload durably, leaving real files behind."""
    from repro.server.service import ProcessLockingService, ServiceConfig
    from repro.sim.workload import WorkloadSpec

    service = ProcessLockingService(
        ServiceConfig(
            spec=WorkloadSpec(
                n_processes=processes, grounded=True, seed=seed
            ),
            seed=seed,
            store="log",
            store_path=path,
            store_fsync="never",
            snapshot_every=10_000,  # keep the journal long (no compaction)
        )
    ).start()
    try:
        service.execute(
            {"cmd": "submit", "count": processes, "wait": True}
        ).result(timeout=120)
        service.execute({"cmd": "drain"}).result(timeout=120)
    finally:
        service.stop()


def _log_files(path: str) -> dict[str, str]:
    """``{namespace: filepath}`` for every log file in the store dir."""
    files = {}
    for name in sorted(os.listdir(path)):
        if name.endswith(".log"):
            namespace = name[: -len(".log")].replace("@", "/")
            files[namespace] = os.path.join(path, name)
    return files


def _frames_of(filepath: str) -> list[bytes]:
    with open(filepath, "rb") as handle:
        return scan_frames(handle.read()).payloads


def _reopen_frames(path: str, namespace: str) -> list[bytes]:
    """Open the store (healing torn tails) and read one namespace raw."""
    from repro.storage import Store

    store = Store.open("log", path, fsync="never")
    try:
        return [
            payload
            for payload in store.backend.read_all(namespace)
        ]
    finally:
        store.close()


def _check_prefix(
    recovered: list[bytes], pristine: list[bytes]
) -> str:
    """Empty string when ``recovered`` is a frame prefix, else why not."""
    if len(recovered) > len(pristine):
        return (
            f"recovered {len(recovered)} frames from a file that "
            f"only ever held {len(pristine)}"
        )
    for index, (got, want) in enumerate(zip(recovered, pristine)):
        if got != want:
            return f"frame {index} differs after recovery"
    return ""


def run_durability_campaign(
    seed: int = 0, quick: bool = False
) -> DurabilityReport:
    """Damage a real durable store every way a crash can; verify recovery."""
    report = DurabilityReport(seed=seed)
    rng = random.Random(seed)
    processes = 6 if quick else 10
    cuts_per_file = 3 if quick else 6
    workdir = tempfile.mkdtemp(prefix="repro-durability-")
    golden = os.path.join(workdir, "golden")
    _populate_store(golden, seed, processes)
    pristine = {
        namespace: _frames_of(filepath)
        for namespace, filepath in _log_files(golden).items()
    }

    def fresh_copy() -> str:
        target = tempfile.mkdtemp(dir=workdir, prefix="round-")
        os.rmdir(target)
        shutil.copytree(golden, target)
        return target

    try:
        # -- torn tails: truncate at arbitrary byte offsets ------------
        for namespace, filepath in _log_files(golden).items():
            size = os.path.getsize(filepath)
            if size <= HEADER_SIZE:
                continue
            offsets = sorted(
                rng.sample(
                    range(1, size), min(cuts_per_file, size - 1)
                )
            )
            for offset in offsets:
                target = fresh_copy()
                victim = os.path.join(
                    target, os.path.basename(filepath)
                )
                with open(victim, "r+b") as handle:
                    handle.truncate(offset)
                failure = ""
                try:
                    recovered = _reopen_frames(target, namespace)
                    failure = _check_prefix(
                        recovered, pristine[namespace]
                    )
                except WalCorruptionError as error:
                    # A cut landing on a frame boundary of an earlier
                    # record is indistinguishable from a shorter valid
                    # log; a cut mid-frame must heal, never raise.
                    failure = f"torn tail raised: {error}"
                report.rounds.append(
                    DurabilityRound(
                        family="torn-tail",
                        namespace=namespace,
                        detail=f"truncate@{offset}/{size}B",
                        ok=not failure,
                        failure=failure,
                    )
                )

        # -- checksum corruption: flip a byte in a complete frame ------
        for namespace, filepath in _log_files(golden).items():
            frames = pristine[namespace]
            if not frames:
                continue
            target = fresh_copy()
            victim = os.path.join(target, os.path.basename(filepath))
            # Pick a byte inside the first frame's payload: always a
            # complete frame, so healing cannot quietly drop it.
            offset = HEADER_SIZE + rng.randrange(len(frames[0]))
            with open(victim, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes([byte[0] ^ 0xFF]))
            failure = "corrupt frame went undetected"
            try:
                recovered = _reopen_frames(target, namespace)
                if recovered[:1] != frames[:1]:
                    # Length/CRC collision fallout must still never
                    # surface a silently different record...
                    failure = "corrupt frame decoded to wrong payload"
            except WalCorruptionError:
                failure = ""
            report.rounds.append(
                DurabilityRound(
                    family="checksum",
                    namespace=namespace,
                    detail=f"flip byte@{offset}",
                    ok=not failure,
                    failure=failure,
                )
            )

        # -- partial fsync loss: drop whole tail frames ----------------
        for namespace, filepath in _log_files(golden).items():
            frames = pristine[namespace]
            if len(frames) < 2:
                continue
            keep = rng.randrange(1, len(frames))
            boundary = sum(
                HEADER_SIZE + len(payload)
                for payload in frames[:keep]
            )
            target = fresh_copy()
            victim = os.path.join(target, os.path.basename(filepath))
            with open(victim, "r+b") as handle:
                handle.truncate(boundary)
            failure = ""
            try:
                recovered = _reopen_frames(target, namespace)
                if recovered != frames[:keep]:
                    failure = (
                        f"expected the {keep}-frame prefix, got "
                        f"{len(recovered)} frames"
                    )
            except WalCorruptionError as error:
                failure = f"frame-boundary truncation raised: {error}"
            report.rounds.append(
                DurabilityRound(
                    family="fsync-loss",
                    namespace=namespace,
                    detail=f"keep {keep}/{len(frames)} frames",
                    ok=not failure,
                    failure=failure,
                )
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report
