"""Retry/backoff policies for retriable activities.

The paper treats retriable activities as "retried until they succeed";
the manager's seed behaviour is a fixed ``retry_delay`` with no budget.
This module adds production-style policies — fixed, exponential, and
seeded-jitter backoff — each with a **max-attempt budget**.  The budget
serves two purposes:

* it bounds the transient failures a fault plan may inject, preserving
  guaranteed termination (the chaos harness relies on this);
* it makes the retry tail part of the worst-case cost: each extra
  attempt of ``a`` adds ``c(a)`` to the process's ``Wcc`` (see
  :func:`repro.core.cost_based.retry_wcc_charge` /
  :func:`repro.core.cost_based.retry_budget_wcc`), so cost-based
  protection reacts to retry storms exactly as it reacts to long
  programs.

Policies are self-contained and picklable; jitter draws from an RNG
derived from the policy's own seed, never from the manager's stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.sim.rng import derive_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Base policy: fixed delay, bounded attempts.

    ``max_attempts`` counts *total* attempts of one activity execution,
    first try included; once the budget is reached the attempt is
    treated as successful (retriables are guaranteed to eventually
    succeed — the budget merely bounds how long "eventually" may take
    under injection).
    """

    base_delay: float = 1.0
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise SchedulerError(
                f"retry base_delay must be >= 0 (got {self.base_delay!r})"
            )
        if self.max_attempts < 1:
            raise SchedulerError(
                f"retry max_attempts must be >= 1 "
                f"(got {self.max_attempts!r})"
            )

    def delay_for(self, retry_number: int) -> float:
        """Virtual-time delay before retry ``retry_number`` (1-based)."""
        return self.base_delay


@dataclass(frozen=True)
class FixedBackoff(RetryPolicy):
    """Constant delay between attempts (the seed behaviour, bounded)."""


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """``base_delay * factor**(n-1)``, capped at ``max_delay``."""

    factor: float = 2.0
    max_delay: float = 32.0

    def delay_for(self, retry_number: int) -> float:
        delay = self.base_delay * self.factor ** (retry_number - 1)
        return min(delay, self.max_delay)


@dataclass(frozen=True)
class JitteredBackoff(ExponentialBackoff):
    """Exponential backoff plus seeded uniform jitter.

    The jitter for retry ``n`` is drawn from an RNG derived from
    ``(seed, n)``, so paired runs with equal seeds back off identically
    while distinct retries stay decorrelated.
    """

    jitter: float = 0.5
    seed: int = 0

    def delay_for(self, retry_number: int) -> float:
        delay = super().delay_for(retry_number)
        if self.jitter <= 0:
            return delay
        rng = derive_rng(self.seed, f"backoff:{retry_number}")
        return delay + rng.uniform(0.0, self.jitter)


def make_policy(spec, seed: int = 0) -> RetryPolicy:
    """Build a policy from a :class:`repro.faults.plan.RetrySpec`."""
    if spec.kind == "fixed":
        return FixedBackoff(
            base_delay=spec.base_delay, max_attempts=spec.max_attempts
        )
    if spec.kind == "exponential":
        return ExponentialBackoff(
            base_delay=spec.base_delay,
            max_attempts=spec.max_attempts,
            factor=spec.factor,
            max_delay=spec.max_delay,
        )
    if spec.kind == "jittered":
        return JitteredBackoff(
            base_delay=spec.base_delay,
            max_attempts=spec.max_attempts,
            factor=spec.factor,
            max_delay=spec.max_delay,
            jitter=spec.jitter,
            seed=seed,
        )
    raise SchedulerError(f"unknown retry policy kind {spec.kind!r}")
