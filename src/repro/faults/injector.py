"""Deterministic fault injection into a process-manager run.

The :class:`FaultInjector` executes one compiled
:class:`~repro.faults.plan.FaultSchedule` against one workload/protocol
pair.  It owns the event loop: the simulation advances through
:meth:`SimulationEngine.run_steps` in chunks bounded by the next
event-indexed injection, so injections fire at exact global event
indices — stable across runs, which is what makes chaos runs
reproducible byte for byte.

Three injection channels exist:

* **decision hooks** — the manager consults the attached injector for
  activity outcomes (``should_fail`` / ``wants_retry``) and execution
  latency (``latency_for``); decisions are drawn from RNG streams
  derived per activity from the schedule seed, honoring each type's
  ``p(a)``;
* **event-indexed injections** — subsystem outages, WAL-backed
  subsystem crashes (a doomed transaction writes sentinels, the
  subsystem crashes, recovery must roll the loser back), and
  whole-manager crash/recover cycles through
  :mod:`repro.scheduler.recovery`;
* **retry policy** — installed on the :class:`ManagerConfig` from the
  plan's :class:`~repro.faults.plan.RetrySpec`, bounding injected
  transient failures so termination stays guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.activities.activity import Activity
from repro.faults.plan import (
    CorrelatedOutage,
    FaultSchedule,
    Injection,
    ManagerCrash,
    SubsystemCrash,
    SubsystemOutage,
)
from repro.faults.retry import make_policy
from repro.obs import NULL_TRACER
from repro.obs.events import FaultInjected
from repro.process.instance import Process
from repro.scheduler.manager import (
    ManagerConfig,
    ProcessManager,
    RunResult,
    make_manager,
)
from repro.scheduler.recovery import crash, recover
from repro.sim.metrics import merge_stats
from repro.sim.runner import make_protocol
from repro.sim.workload import Workload

#: Events to advance per chunk when no injection is pending.
_CHUNK = 4096


@dataclass
class FaultCounters:
    """What the injector actually did during one run."""

    injected_failures: int = 0
    injected_retries: int = 0
    latency_injections: int = 0
    outages_started: int = 0
    #: Correlated-outage *groups* fired (each member also counts one
    #: ``outages_started``).
    correlated_outages: int = 0
    outage_hits: int = 0
    subsystem_crashes: int = 0
    manager_recoveries: int = 0
    #: Times a retry budget forced a failing retriable to succeed
    #: (bumped by the manager; see ``retry.budget_exhausted`` events).
    retry_budget_exhausted: int = 0
    #: Event-indexed injections that never fired (run drained first) or
    #: could not apply (e.g. manager crash under a protocol without
    #: recovery support, subsystem crash without a durable pool).
    dropped_injections: int = 0

    @property
    def injected_total(self) -> int:
        return (
            self.injected_failures
            + self.injected_retries
            + self.latency_injections
            + self.outages_started
            + self.subsystem_crashes
            + self.manager_recoveries
        )


@dataclass(frozen=True)
class WalCheck:
    """Outcome of one WAL-backed subsystem crash/recovery."""

    subsystem: str
    at_event: int
    undone: int
    losers_after: int
    sentinels_rolled_back: bool

    @property
    def ok(self) -> bool:
        return self.losers_after == 0 and self.sentinels_rolled_back


@dataclass
class ChaosRunResult:
    """One fault-injected run, merged across manager incarnations."""

    result: RunResult
    #: Counters merged across every manager incarnation (the final
    #: :class:`RunResult` only carries the last incarnation's).
    stats: object
    #: Virtual makespan summed across incarnations (each recovered
    #: manager restarts its clock at zero).
    makespan: float
    counters: FaultCounters
    #: Every post-crash trace continued its predecessor exactly.
    splice_ok: bool
    wal_checks: list[WalCheck] = field(default_factory=list)
    incarnations: int = 1
    #: Simulation events processed across every incarnation (the
    #: denominator of long-horizon soak accounting).
    events: int = 0


class FaultInjector:
    """Executes one fault schedule against one workload/protocol run."""

    def __init__(
        self,
        workload: Workload,
        protocol_name: str,
        schedule: FaultSchedule,
        config: ManagerConfig | None = None,
        seed: int = 0,
        durable_subsystems: bool = True,
        tracer=None,
    ) -> None:
        self.workload = workload
        self.protocol_name = protocol_name
        self.schedule = schedule
        self.seed = seed
        #: Observability tracer shared across manager incarnations; its
        #: time offset is advanced on every manager crash so stamps stay
        #: monotone over the whole logical run.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.config = self._configured(config)
        self.pool = workload.make_subsystems(durable=durable_subsystems)
        self.counters = FaultCounters()
        self.wal_checks: list[WalCheck] = []
        self.splice_ok = True
        self._incarnation = 0
        #: Outage windows per subsystem as ``[start, end]`` pairs in
        #: the current incarnation's clock.  A list (not one merged end
        #: time) because staggered correlated outages may open a window
        #: that *starts in the future*; the subsystem is down only
        #: while ``start <= now < end``.
        self._outages: dict[str, list[list[float]]] = {}
        self._manager: ProcessManager | None = None
        #: ``(stats, makespan)`` of crashed (closed) incarnations.
        self._slices: list[tuple[object, float]] = []

    def _configured(self, config: ManagerConfig | None) -> ManagerConfig:
        config = config or ManagerConfig()
        if self.schedule.plan.retry is not None:
            config.retry_policy = make_policy(
                self.schedule.plan.retry, seed=self.schedule.seed
            )
        return config

    # ------------------------------------------------------------------
    # decision hooks (called by the manager)
    # ------------------------------------------------------------------
    def _subsystem_down(self, activity: Activity) -> bool:
        windows = self._outages.get(activity.activity_type.subsystem)
        if not windows:
            return False
        assert self._manager is not None
        now = self._manager.engine.now
        return any(start <= now < end for start, end in windows)

    def _notify_outage_hit(self, activity: Activity) -> None:
        """Feed the outage hit to an attached resilience layer."""
        resilience = (
            self._manager.resilience
            if self._manager is not None
            else None
        )
        if resilience is not None:
            resilience.on_outage_hit(
                activity.activity_type.subsystem
            )

    def _decision_stream(self, label, process: Process, activity):
        return self.schedule.stream(
            f"{label}:{process.pid}:{process.incarnation}:"
            f"{activity.seq}:{activity.name}"
        )

    def should_fail(
        self, process: Process, activity: Activity
    ) -> bool | None:
        """Outcome of a completed non-retriable activity.

        ``True``/``False`` replaces the manager's own sampling; ``None``
        falls through to it.  Failure probability honors the type's
        ``p(a)`` scaled by the plan, drawn from a per-activity stream.
        """
        if self._subsystem_down(activity):
            self.counters.outage_hits += 1
            self.counters.injected_failures += 1
            self._notify_outage_hit(activity)
            self._trace_fault(
                "failure", process, activity, via="outage"
            )
            return True
        spec = self.schedule.failures
        if spec is None or not spec.applies_to(
            activity.activity_type.subsystem
        ):
            return None
        probability = min(
            1.0,
            activity.activity_type.failure_probability * spec.rate_scale,
        )
        verdict = (
            self._decision_stream("fail", process, activity).random()
            < probability
        )
        if verdict:
            self.counters.injected_failures += 1
            self._trace_fault("failure", process, activity)
        return verdict

    def wants_retry(
        self, process: Process, activity: Activity, attempts: int
    ) -> bool | None:
        """Whether a retriable completion fails transiently this attempt."""
        if self._subsystem_down(activity):
            self.counters.outage_hits += 1
            self.counters.injected_retries += 1
            self._notify_outage_hit(activity)
            self._trace_fault("retry", process, activity, via="outage")
            return True
        spec = self.schedule.failures
        if (
            spec is None
            or spec.transient_prob <= 0
            or not spec.applies_to(activity.activity_type.subsystem)
        ):
            return None
        stream = self._decision_stream(
            "retry", process, activity
        )
        # One stream per activity execution; skip to this attempt's draw
        # so the decision depends only on (activity, attempt).
        verdict = False
        for _ in range(attempts):
            verdict = stream.random() < spec.transient_prob
        if verdict:
            self.counters.injected_retries += 1
            self._trace_fault("retry", process, activity)
        return verdict

    def latency_for(
        self, process: Process, activity: Activity
    ) -> float:
        """Extra virtual-time latency for one activity execution."""
        spec = self.schedule.latency
        if spec is None or not spec.applies_to(
            activity.activity_type.subsystem
        ):
            return 0.0
        extra = spec.extra
        if spec.jitter > 0:
            extra += self._decision_stream(
                "latency", process, activity
            ).uniform(0.0, spec.jitter)
        if extra > 0:
            self.counters.latency_injections += 1
            self._trace_fault(
                "latency", process, activity, extra=extra
            )
        return extra

    def _trace_fault(
        self, channel: str, process: Process, activity: Activity,
        **detail,
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel=channel,
                    pid=process.pid,
                    activity=activity.name,
                    detail=detail,
                )
            )

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self) -> ChaosRunResult:
        """Drive the workload to quiescence, firing every injection."""
        self._manager = self._fresh_manager()
        pending = list(self.schedule.injections)
        events_total = 0
        while True:
            if pending and pending[0].at_event <= events_total:
                self._fire(pending.pop(0))
                continue
            budget = (
                pending[0].at_event - events_total
                if pending
                else _CHUNK
            )
            fired = self._manager.engine.run_steps(min(budget, _CHUNK))
            events_total += fired
            if fired == 0:
                # Queue drained: injections past the end never fire.
                self.counters.dropped_injections += len(pending)
                break
        result = self._manager.run()
        merged = merge_stats(
            [s for s, __ in self._slices] + [result.stats],
            submitted=len(result.records),
        )
        makespan = (
            sum(m for __, m in self._slices) + result.makespan
        )
        return ChaosRunResult(
            result=result,
            stats=merged,
            makespan=makespan,
            counters=self.counters,
            splice_ok=self.splice_ok,
            wal_checks=list(self.wal_checks),
            incarnations=self._incarnation + 1,
            events=events_total,
        )

    def _fresh_manager(self) -> ProcessManager:
        manager = make_manager(
            make_protocol(self.protocol_name, self.workload),
            subsystems=self.pool,
            config=self.config,
            seed=self.seed,
            tracer=self.tracer,
        )
        manager.injector = self
        for index, program in enumerate(self.workload.programs):
            manager.submit(
                program, at=self.workload.arrival_time(index)
            )
        return manager

    # ------------------------------------------------------------------
    # event-indexed injections
    # ------------------------------------------------------------------
    def _fire(self, injection: Injection) -> None:
        spec = injection.spec
        if isinstance(spec, SubsystemOutage):
            self._fire_outage(spec)
        elif isinstance(spec, CorrelatedOutage):
            self._fire_correlated(spec)
        elif isinstance(spec, SubsystemCrash):
            self._fire_subsystem_crash(spec, injection.at_event)
        elif isinstance(spec, ManagerCrash):
            self._fire_manager_crash()

    def _open_window(
        self, subsystem: str, start: float, end: float
    ) -> None:
        self._outages.setdefault(subsystem, []).append([start, end])
        if self.pool is not None and subsystem in self.pool:
            self.pool.get(subsystem).begin_outage(end)
        self.counters.outages_started += 1

    def _fire_outage(self, spec: SubsystemOutage) -> None:
        assert self._manager is not None
        now = self._manager.engine.now
        self._open_window(spec.subsystem, now, now + spec.duration)
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel="outage",
                    detail={
                        "subsystem": spec.subsystem,
                        "duration": spec.duration,
                    },
                )
            )

    def _fire_correlated(self, spec: CorrelatedOutage) -> None:
        """Down every member of a subsystem group from one trigger.

        Member ``i``'s window opens ``i * stagger`` after the trigger,
        so a staggered group models a failure front; with ``stagger=0``
        the whole group drops at once.
        """
        assert self._manager is not None
        now = self._manager.engine.now
        for index, subsystem in enumerate(spec.subsystems):
            start = now + index * spec.stagger
            self._open_window(subsystem, start, start + spec.duration)
        self.counters.correlated_outages += 1
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel="correlated-outage",
                    detail={
                        "subsystems": list(spec.subsystems),
                        "duration": spec.duration,
                        "stagger": spec.stagger,
                    },
                )
            )

    def _fire_subsystem_crash(
        self, spec: SubsystemCrash, at_event: int
    ) -> None:
        if self.pool is None or spec.subsystem not in self.pool:
            self.counters.dropped_injections += 1
            return
        subsystem = self.pool.get(spec.subsystem)
        if subsystem.wal is None:
            self.counters.dropped_injections += 1
            return
        # A doomed loser: WAL-logged sentinel writes that the crash
        # strands mid-flight.  Recovery must restore every before-image.
        keys = [
            f"{spec.subsystem}:doomed{i}"
            for i in range(spec.doomed_writes)
        ]
        existing = sorted(subsystem.store.snapshot())
        keys[: len(existing)] = existing[: len(keys)]
        before = {key: subsystem.store.read(key) for key in keys}
        txn = subsystem.begin()
        for key in keys:
            txn.write(key, lambda _old: "__doomed__")
        undone = subsystem.simulate_crash_and_recover()
        rolled_back = all(
            subsystem.store.read(key) == before[key] for key in keys
        )
        self.wal_checks.append(
            WalCheck(
                subsystem=spec.subsystem,
                at_event=at_event,
                undone=undone,
                losers_after=len(subsystem.wal.losers()),
                sentinels_rolled_back=rolled_back,
            )
        )
        self.counters.subsystem_crashes += 1
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel="subsystem-crash",
                    detail={
                        "subsystem": spec.subsystem,
                        "at_event": at_event,
                        "undone": undone,
                        "rolled_back": rolled_back,
                    },
                )
            )

    def _fire_manager_crash(self) -> None:
        assert self._manager is not None
        protocol = make_protocol(self.protocol_name, self.workload)
        if not hasattr(protocol, "restore_grant"):
            # Baseline protocols have no crash-recovery support; the
            # injection is recorded as dropped rather than failing the
            # run.
            self.counters.dropped_injections += 1
            return
        manager = self._manager
        prior_events = list(manager.trace.events)
        self._slices.append((manager.stats, manager.engine.now))
        image = crash(manager)
        # The crashed incarnation never reaches run()'s finally, so its
        # shard workers (if any) are released here.
        manager.close()
        self._incarnation += 1
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel="manager-crash",
                    detail={
                        "crashed_at": image.crashed_at,
                        "incarnation": self._incarnation,
                    },
                )
            )
            # Each incarnation restarts its virtual clock at zero;
            # shifting the tracer keeps stamps monotone end to end.
            self.tracer.offset += image.crashed_at
        recovered = recover(
            image,
            protocol,
            config=self.config,
            subsystems=self.pool,
            seed=self.seed + self._incarnation,
            tracer=self.tracer,
        )
        recovered.injector = self
        if recovered.trace.events[: len(prior_events)] != prior_events:
            self.splice_ok = False
        # Outage windows survive the crash with their remaining
        # duration (the recovered engine restarts at virtual time 0);
        # windows fully in the past are dropped.
        crashed_at = image.crashed_at
        self._outages = {
            name: shifted
            for name, windows in self._outages.items()
            if (
                shifted := [
                    [max(0.0, start - crashed_at), end - crashed_at]
                    for start, end in windows
                    if end - crashed_at > 0
                ]
            )
        }
        self.counters.manager_recoveries += 1
        if self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel="manager-recover",
                    detail={
                        "incarnation": self._incarnation,
                        "recovered": len(image.snapshots),
                        "splice_ok": self.splice_ok,
                    },
                )
            )
        self._manager = recovered
