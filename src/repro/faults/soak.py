"""Long-horizon soak campaign: thousands of virtual-time events.

One soak run chains several chaos *rounds* — rotating workload shapes
(dense, grounded-durable, cost-threshold) against rotating fault plans
(``Wcc*``-boundary storms, correlated mayhem with manager crashes,
transient-failure churn) — with periodic structural audits engaged
(``ManagerConfig(audit=True, audit_every=...)``) and the full invariant
battery (termination / CT / P-RC / splice / WAL) asserted per round.

Every round gets a *fresh* :class:`~repro.resilience.ResilienceLayer`
(the layer is stateful per logical run); rounds are seeded from
``plan.seed`` alone, so soak reports are deterministic byte for byte.

``repro soak`` drives this from the CLI; the CI ``soak-smoke`` job
asserts a fixed-seed soak of ≥ 1000 events passes with zero violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.harness import ChaosRunReport, run_chaos
from repro.faults.plan import (
    ActivityFailures,
    CorrelatedOutage,
    FaultPlan,
    InjectedLatency,
    ManagerCrash,
    RetrySpec,
    SubsystemCrash,
)
from repro.faults.storms import threshold_boundary_storm
from repro.scheduler.manager import ManagerConfig
from repro.sim.workload import WorkloadSpec, build_workload

#: Horizon declared on generated soak plans: every injection index must
#: fall inside it (validated), and it bounds where late injections may
#: be scheduled.
_SOAK_HORIZON = 100_000


@dataclass(frozen=True)
class SoakPlan:
    """Parameters of one soak campaign."""

    seed: int = 0
    rounds: int = 8
    processes: int = 16
    wcc_threshold: float = 25.0
    protocol: str = "process-locking"
    #: Structural-audit sampling cadence (1 = audit every event).
    audit_every: int = 16
    #: Attach a fresh resilience layer (breakers on) per round.
    resilience: bool = True
    #: The campaign fails if fewer total events were processed.
    min_events: int = 1000
    #: Shard worker threads for every round (0 = sequential manager;
    #: the default rotation still runs one parallel round — see
    #: :func:`_round_workers` — so parallel execution is soaked even
    #: without opting in).
    workers: int = 0
    #: Batch lock-acquisition depth handed to the parallel manager.
    batch_k: int = 1


@dataclass
class SoakReport:
    """Outcome of one soak campaign."""

    plan: SoakPlan
    runs: list[ChaosRunReport] = field(default_factory=list)
    events_total: int = 0
    #: Per-round resilience snapshots (``None`` entries when disabled).
    resilience_stats: list[object | None] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            all(run.ok for run in self.runs)
            and self.events_total >= self.plan.min_events
        )

    @property
    def failed(self) -> list[ChaosRunReport]:
        return [run for run in self.runs if not run.ok]

    def counts(self) -> dict[str, int]:
        return {
            "rounds": len(self.runs),
            "passed": sum(1 for run in self.runs if run.ok),
            "failed": len(self.failed),
            "events": self.events_total,
            "recoveries": sum(
                run.incarnations - 1 for run in self.runs
            ),
            "injected": sum(
                run.metrics.faults_injected
                for run in self.runs
                if run.metrics
            ),
            "retry_budget_exhausted": sum(
                run.retry_budget_exhausted for run in self.runs
            ),
            "admissions_deferred": sum(
                run.admissions_deferred for run in self.runs
            ),
        }


def _round_spec(plan: SoakPlan, round_index: int) -> WorkloadSpec:
    """The workload shape of one soak round (rotates deterministically)."""
    grounded = round_index % 2 == 1
    return WorkloadSpec(
        n_processes=plan.processes,
        conflict_density=0.3 + 0.1 * (round_index % 3),
        pivot_probability=1.0 if round_index % 3 == 0 else 0.6,
        alternative_count=0 if round_index % 3 == 0 else 1,
        retriable_tail=3,
        arrival_spacing=0.5,
        wcc_threshold=plan.wcc_threshold,
        grounded=grounded,
        seed=plan.seed + 101 * round_index,
    )


def _round_plan(
    plan: SoakPlan, round_index: int, workload
) -> FaultPlan:
    """The fault plan of one soak round (rotates over three families)."""
    family = round_index % 3
    if family == 0:
        return threshold_boundary_storm(
            workload, name=f"soak-storm-r{round_index}"
        )
    if family == 1:
        grounded = workload.spec.grounded
        return FaultPlan(
            name=f"soak-mayhem-r{round_index}",
            failures=ActivityFailures(
                rate_scale=1.5, transient_prob=0.15
            ),
            correlated_outages=(
                CorrelatedOutage(
                    subsystems=("sub0", "sub1"),
                    at_event=30,
                    duration=15.0,
                    stagger=2.0,
                ),
            ),
            subsystem_crashes=(
                (SubsystemCrash("sub2", at_event=45),)
                if grounded
                else ()
            ),
            manager_crashes=(ManagerCrash(at_event=60),),
            latency=InjectedLatency(extra=0.25, jitter=0.5),
            retry=RetrySpec(
                kind="jittered", jitter=0.5, max_attempts=5
            ),
            horizon=_SOAK_HORIZON,
        )
    return FaultPlan(
        name=f"soak-failures-r{round_index}",
        failures=ActivityFailures(rate_scale=2.5, transient_prob=0.2),
        retry=RetrySpec(kind="exponential", max_attempts=4),
        horizon=_SOAK_HORIZON,
    )


def _round_workers(plan: SoakPlan, round_index: int) -> tuple[int, int]:
    """(workers, batch_k) of one round.

    With ``plan.workers`` left at 0, every fourth round still runs
    under the thread-per-shard manager (workers=2, batch_k=2) so the
    default soak rotation exercises the parallel path; schedules are
    byte-identical either way, so round outcomes don't depend on the
    choice.  An explicit ``plan.workers`` applies to every round.
    """
    if plan.workers > 0:
        return plan.workers, plan.batch_k
    if round_index % 4 == 3:
        return 2, max(2, plan.batch_k)
    return 0, plan.batch_k


def run_soak(plan: SoakPlan) -> SoakReport:
    """Run the whole soak campaign and collect its report."""
    report = SoakReport(plan=plan)
    for round_index in range(plan.rounds):
        workload = build_workload(_round_spec(plan, round_index))
        fault_plan = _round_plan(plan, round_index, workload)
        layer = None
        if plan.resilience:
            from repro.resilience import ResilienceLayer

            layer = ResilienceLayer()
        workers, batch_k = _round_workers(plan, round_index)
        config = ManagerConfig(
            audit=True,
            audit_every=plan.audit_every,
            max_resubmissions=100_000,
            resilience=layer,
            workers=workers,
            batch_k=batch_k,
        )
        run = run_chaos(
            workload,
            plan.protocol,
            fault_plan,
            seed=plan.seed + round_index,
            workload_name=f"round{round_index}",
            config=config,
            ct_stride=7,
        )
        report.runs.append(run)
        report.events_total += run.events
        report.resilience_stats.append(
            layer.stats if layer is not None else None
        )
    return report
