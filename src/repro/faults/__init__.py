"""Deterministic fault injection (chaos testing) for the simulator.

Layers:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` compiled by
  :func:`compile_plan` into a byte-stable :class:`FaultSchedule`;
* :mod:`repro.faults.retry` — bounded retry/backoff policies that keep
  termination guaranteed under injected transient failures;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that drives
  a manager through a schedule (outages, WAL subsystem crashes, manager
  crash/recover cycles, seeded failure/latency decisions);
* :mod:`repro.faults.harness` — campaign sweeps asserting termination,
  CT, P-RC, trace splicing, and WAL cleanliness per run.
"""

from repro.faults.harness import (
    DEFAULT_PROTOCOLS,
    CampaignReport,
    ChaosRunReport,
    canonical_trace,
    default_plans,
    default_workloads,
    run_campaign,
    run_chaos,
    trace_digest,
)
from repro.faults.injector import (
    ChaosRunResult,
    FaultCounters,
    FaultInjector,
    WalCheck,
)
from repro.faults.plan import (
    ActivityFailures,
    FaultPlan,
    FaultSchedule,
    InjectedLatency,
    Injection,
    ManagerCrash,
    RetrySpec,
    SubsystemCrash,
    SubsystemOutage,
    compile_plan,
)
from repro.faults.retry import (
    ExponentialBackoff,
    FixedBackoff,
    JitteredBackoff,
    RetryPolicy,
    make_policy,
)

__all__ = [
    "ActivityFailures",
    "CampaignReport",
    "ChaosRunReport",
    "ChaosRunResult",
    "DEFAULT_PROTOCOLS",
    "ExponentialBackoff",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "FixedBackoff",
    "InjectedLatency",
    "Injection",
    "JitteredBackoff",
    "ManagerCrash",
    "RetryPolicy",
    "RetrySpec",
    "SubsystemCrash",
    "SubsystemOutage",
    "WalCheck",
    "canonical_trace",
    "compile_plan",
    "default_plans",
    "default_workloads",
    "make_policy",
    "run_campaign",
    "run_chaos",
    "trace_digest",
]
