"""Deterministic fault injection (chaos testing) for the simulator.

Layers:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` compiled by
  :func:`compile_plan` into a byte-stable :class:`FaultSchedule`;
* :mod:`repro.faults.retry` — bounded retry/backoff policies that keep
  termination guaranteed under injected transient failures;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that drives
  a manager through a schedule (outages, WAL subsystem crashes, manager
  crash/recover cycles, seeded failure/latency decisions);
* :mod:`repro.faults.harness` — campaign sweeps asserting termination,
  CT, P-RC, trace splicing, and WAL cleanliness per run;
* :mod:`repro.faults.storms` — correlated-outage burst trains,
  including storms aimed at the cost-based ``Wcc*`` boundary;
* :mod:`repro.faults.soak` — long-horizon soak campaigns (thousands of
  virtual-time events, sampled audits, full invariant battery per
  round) behind ``repro soak``.
"""

from repro.faults.durability import (
    DurabilityReport,
    DurabilityRound,
    run_durability_campaign,
)
from repro.faults.harness import (
    DEFAULT_PROTOCOLS,
    CampaignReport,
    ChaosRunReport,
    canonical_trace,
    default_plans,
    default_workloads,
    run_campaign,
    run_chaos,
    trace_digest,
)
from repro.faults.injector import (
    ChaosRunResult,
    FaultCounters,
    FaultInjector,
    WalCheck,
)
from repro.faults.plan import (
    ActivityFailures,
    CorrelatedOutage,
    FaultPlan,
    FaultSchedule,
    InjectedLatency,
    Injection,
    ManagerCrash,
    RetrySpec,
    SubsystemCrash,
    SubsystemOutage,
    compile_plan,
)
from repro.faults.retry import (
    ExponentialBackoff,
    FixedBackoff,
    JitteredBackoff,
    RetryPolicy,
    make_policy,
)
from repro.faults.soak import SoakPlan, SoakReport, run_soak
from repro.faults.storms import (
    outage_storm,
    threshold_boundary_storm,
    threshold_boundary_subsystems,
)

__all__ = [
    "ActivityFailures",
    "CampaignReport",
    "ChaosRunReport",
    "ChaosRunResult",
    "CorrelatedOutage",
    "DEFAULT_PROTOCOLS",
    "DurabilityReport",
    "DurabilityRound",
    "ExponentialBackoff",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "FixedBackoff",
    "InjectedLatency",
    "Injection",
    "JitteredBackoff",
    "ManagerCrash",
    "RetryPolicy",
    "RetrySpec",
    "SoakPlan",
    "SoakReport",
    "SubsystemCrash",
    "SubsystemOutage",
    "WalCheck",
    "canonical_trace",
    "compile_plan",
    "default_plans",
    "default_workloads",
    "make_policy",
    "outage_storm",
    "run_campaign",
    "run_chaos",
    "run_durability_campaign",
    "run_soak",
    "threshold_boundary_storm",
    "threshold_boundary_subsystems",
    "trace_digest",
]
