"""Declarative fault plans and their deterministic compilation.

A :class:`FaultPlan` describes *what* to break — activity failures
honoring each type's ``p(a)``, subsystem outages with a duration,
WAL-backed subsystem crashes, whole-manager crashes at chosen event
indices, injected latency — without saying anything about mechanism.
:func:`compile_plan` turns a plan plus a seed into a
:class:`FaultSchedule`: the event-indexed injections sorted into firing
order plus the seeded probabilistic layers, with a canonical byte-stable
serialization used by the determinism assertions of the chaos harness.

Nothing in this module touches a manager; the schedule is executed by
:class:`repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import SchedulerError
from repro.sim.rng import derive_rng


@dataclass(frozen=True)
class ActivityFailures:
    """Deterministic activity-failure layer.

    Replaces the manager's own failure sampling with draws from a
    per-activity RNG derived from the schedule seed, so the failure
    pattern is a function of ``(plan, seed)`` alone — independent of
    event ordering.  Each non-retriable activity ``a`` fails with
    probability ``min(1, p(a) * rate_scale)``, honoring its declared
    ``p(a)``; retriable activities experience transient (retry-and-
    succeed) failures with probability ``transient_prob`` per attempt.
    """

    #: Multiplier applied to each activity type's ``p(a)``.
    rate_scale: float = 1.0
    #: Per-attempt transient-failure probability of retriable activities.
    transient_prob: float = 0.0
    #: Restrict injection to these subsystems (empty = all).
    subsystems: tuple[str, ...] = ()

    def applies_to(self, subsystem: str) -> bool:
        return not self.subsystems or subsystem in self.subsystems


@dataclass(frozen=True)
class SubsystemOutage:
    """A subsystem is unavailable for ``duration`` of virtual time.

    While down, non-retriable activities of the subsystem fail (and are
    resolved through compensation/alternatives as usual) and retriable
    activities retry until the outage lifts.
    """

    subsystem: str
    at_event: int
    duration: float


@dataclass(frozen=True)
class CorrelatedOutage:
    """One trigger downs a whole subsystem *group*.

    Models correlated multi-site failures (shared switch, rack power,
    common dependency): at the chosen event index every member of the
    group goes down for ``duration``.  ``stagger`` delays member ``i``'s
    window start by ``i * stagger`` of virtual time, modelling a failure
    *front* sweeping across the group rather than a single instant.
    """

    subsystems: tuple[str, ...]
    at_event: int
    duration: float
    stagger: float = 0.0


@dataclass(frozen=True)
class SubsystemCrash:
    """Crash a durable subsystem and run its WAL recovery.

    At the chosen event index a doomed transaction writes
    ``doomed_writes`` sentinel values (WAL-logged), then the subsystem
    crashes; recovery must roll the loser back, which the harness
    asserts key by key.
    """

    subsystem: str
    at_event: int
    doomed_writes: int = 2


@dataclass(frozen=True)
class ManagerCrash:
    """Crash the whole process manager at a global event index.

    The injector journals the manager (:func:`repro.scheduler.recovery.
    crash`), rebuilds a fresh protocol instance, and resumes via
    :func:`repro.scheduler.recovery.recover`; the spliced trace is
    checked end to end.
    """

    at_event: int


@dataclass(frozen=True)
class InjectedLatency:
    """Extra virtual-time latency added to activity executions.

    ``extra`` is added to every matching activity's duration; ``jitter``
    adds a uniform ``[0, jitter)`` component drawn from a per-activity
    seeded RNG (deterministic, order-independent).
    """

    extra: float = 0.0
    jitter: float = 0.0
    #: Restrict to these subsystems (empty = all).
    subsystems: tuple[str, ...] = ()

    def applies_to(self, subsystem: str) -> bool:
        return not self.subsystems or subsystem in self.subsystems


@dataclass(frozen=True)
class RetrySpec:
    """Declarative retry/backoff policy (see :mod:`repro.faults.retry`)."""

    kind: str = "fixed"  # fixed | exponential | jittered
    base_delay: float = 1.0
    factor: float = 2.0
    max_delay: float = 32.0
    jitter: float = 0.0
    #: Total attempt budget per activity execution (first try included).
    max_attempts: int = 8


@dataclass(frozen=True)
class FaultPlan:
    """A named, declarative bundle of faults to inject into one run."""

    name: str
    failures: ActivityFailures | None = None
    outages: tuple[SubsystemOutage, ...] = ()
    correlated_outages: tuple[CorrelatedOutage, ...] = ()
    subsystem_crashes: tuple[SubsystemCrash, ...] = ()
    manager_crashes: tuple[ManagerCrash, ...] = ()
    latency: InjectedLatency | None = None
    retry: RetrySpec | None = None
    #: Optional declared event horizon of the run this plan targets.
    #: Purely a validation aid: injections indexed past it would never
    #: fire (they'd be silently dropped at drain time), so ``validate``
    #: rejects them up front.  ``None`` skips the check.
    horizon: int | None = None

    def validate(self) -> None:
        def err(message: str) -> SchedulerError:
            return SchedulerError(f"plan {self.name!r}: {message}")

        for outage in self.outages:
            if outage.duration <= 0:
                raise err(
                    f"outage duration must be > 0 "
                    f"(got {outage.duration!r} on "
                    f"{outage.subsystem!r})"
                )
        for group in self.correlated_outages:
            if not group.subsystems:
                raise err(
                    f"correlated outage at event {group.at_event} "
                    f"names no subsystems"
                )
            if len(set(group.subsystems)) != len(group.subsystems):
                raise err(
                    f"correlated outage at event {group.at_event} "
                    f"lists a subsystem twice: {group.subsystems!r}"
                )
            if group.duration <= 0:
                raise err(
                    f"correlated outage duration must be > 0 "
                    f"(got {group.duration!r})"
                )
            if group.stagger < 0:
                raise err(
                    f"correlated outage stagger must be >= 0 "
                    f"(got {group.stagger!r})"
                )
        # Two outage windows opening on the same subsystem at the same
        # event index are either a duplicate or an author error; merged
        # windows should be expressed as one longer window.
        seen: set[tuple[str, int]] = set()
        per_subsystem = [
            (outage.subsystem, outage.at_event)
            for outage in self.outages
        ] + [
            (name, group.at_event)
            for group in self.correlated_outages
            for name in group.subsystems
        ]
        for subsystem, at_event in per_subsystem:
            key = (subsystem, at_event)
            if key in seen:
                raise err(
                    f"overlapping outage windows on {subsystem!r} at "
                    f"event {at_event}: merge them into one window or "
                    f"move one to a different event index"
                )
            seen.add(key)
        if self.latency is not None:
            if self.latency.extra < 0:
                raise err(
                    f"injected latency extra must be >= 0 "
                    f"(got {self.latency.extra!r})"
                )
            if self.latency.jitter < 0:
                raise err(
                    f"injected latency jitter must be >= 0 "
                    f"(got {self.latency.jitter!r})"
                )
        for inj in self.event_indexed():
            if inj.at_event < 0:
                raise err(
                    f"negative event index {inj.at_event} on "
                    f"{type(inj).__name__}"
                )
        if self.horizon is not None:
            if self.horizon < 0:
                raise err(
                    f"horizon must be >= 0 (got {self.horizon!r})"
                )
            for inj in self.event_indexed():
                if inj.at_event > self.horizon:
                    raise err(
                        f"{type(inj).__name__} at event "
                        f"{inj.at_event} lies past the plan horizon "
                        f"({self.horizon}) and would never fire; move "
                        f"it inside the horizon or raise/drop "
                        f"`horizon`"
                    )

    def event_indexed(
        self,
    ) -> list[
        SubsystemOutage
        | CorrelatedOutage
        | SubsystemCrash
        | ManagerCrash
    ]:
        return [*self.outages, *self.correlated_outages,
                *self.subsystem_crashes, *self.manager_crashes]


#: Stable tags for the canonical serialization, one per injection type.
_KIND_TAGS = {
    SubsystemOutage: "outage",
    CorrelatedOutage: "correlated-outage",
    SubsystemCrash: "subsystem-crash",
    ManagerCrash: "manager-crash",
}


@dataclass(frozen=True)
class Injection:
    """One compiled, event-indexed injection, ready to fire."""

    at_event: int
    #: Tie-break among injections sharing an event index (plan order).
    order: int
    kind: str
    spec: object


@dataclass
class FaultSchedule:
    """A compiled plan: sorted injections + seeded probabilistic layers."""

    plan: FaultPlan
    seed: int
    injections: list[Injection] = field(default_factory=list)

    @property
    def failures(self) -> ActivityFailures | None:
        return self.plan.failures

    @property
    def latency(self) -> InjectedLatency | None:
        return self.plan.latency

    def stream(self, label: str):
        """A seeded RNG unique to ``(seed, plan, label)``.

        Deriving per-decision streams (rather than drawing from one
        sequential RNG) makes every injection decision independent of
        the order in which the injector happens to ask.
        """
        return derive_rng(self.seed, f"faults:{self.plan.name}:{label}")

    def canonical(self) -> str:
        """Byte-stable serialization for determinism assertions."""
        return json.dumps(
            {
                "plan": self.plan.name,
                "seed": self.seed,
                "failures": (
                    asdict(self.plan.failures)
                    if self.plan.failures
                    else None
                ),
                "latency": (
                    asdict(self.plan.latency)
                    if self.plan.latency
                    else None
                ),
                "retry": (
                    asdict(self.plan.retry) if self.plan.retry else None
                ),
                "horizon": self.plan.horizon,
                "injections": [
                    {
                        "at_event": inj.at_event,
                        "order": inj.order,
                        "kind": inj.kind,
                        "spec": asdict(inj.spec),
                    }
                    for inj in self.injections
                ],
            },
            separators=(",", ":"),
            sort_keys=True,
        )


def compile_plan(plan: FaultPlan, seed: int) -> FaultSchedule:
    """Compile ``plan`` into a deterministic injection schedule.

    Event-indexed injections are sorted by ``(at_event, plan order)``;
    the probabilistic layers keep their specs and draw from RNG streams
    derived from ``seed`` at injection time.  Compiling the same plan
    with the same seed always yields a byte-identical schedule
    (:meth:`FaultSchedule.canonical`).
    """
    plan.validate()
    injections = [
        Injection(
            at_event=spec.at_event,
            order=order,
            kind=_KIND_TAGS[type(spec)],
            spec=spec,
        )
        for order, spec in enumerate(plan.event_indexed())
    ]
    injections.sort(key=lambda inj: (inj.at_event, inj.order))
    return FaultSchedule(plan=plan, seed=seed, injections=injections)
