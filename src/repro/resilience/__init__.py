"""Subsystem health layer: circuit breakers + adaptive ``Wcc*``.

Turns the protocol's static cost knobs into runtime fault response:

* :mod:`repro.resilience.health` — per-subsystem
  :class:`CircuitBreaker` state machines (closed → open → half-open)
  under a deterministic virtual-time cooldown, aggregated by
  :class:`SubsystemHealth`;
* :mod:`repro.resilience.layer` — the :class:`ResilienceLayer` that a
  manager config attaches (``ManagerConfig(resilience=...)``): admission
  shedding for processes needing an open-breaker subsystem and an
  adaptive ``Wcc*`` cap while degraded, every transition traced.

With the default ``ManagerConfig(resilience=None)`` nothing here is
imported on the hot path and schedules stay byte-identical to the
pre-resilience behaviour (asserted by
``benchmarks/test_resilience_overhead.py``).
"""

from repro.resilience.health import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    SubsystemHealth,
)
from repro.resilience.layer import (
    ResilienceConfig,
    ResilienceLayer,
    ResilienceStats,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilienceLayer",
    "ResilienceStats",
    "SubsystemHealth",
]
