"""Per-subsystem health tracking with deterministic circuit breakers.

The paper's cost-based extension (Section 4) is a *static* degradation
dial: each program carries one ``Wcc*`` for its whole life.  This module
supplies the runtime signal that lets the dial move: a
:class:`SubsystemHealth` tracker fed by injector/manager outcomes
(failures, outage hits, retry-budget exhaustion, injected latency) with
one :class:`CircuitBreaker` per subsystem.

Breakers follow the classic three-state machine —

* **closed** — healthy; consecutive failures are counted, successes
  reset the streak;
* **open** — tripped after ``failure_threshold`` consecutive failures;
  the admission layer sheds new processes needing the subsystem and the
  effective ``Wcc*`` is tightened while any breaker is open;
* **half-open** — entered after ``cooldown`` of *virtual* time; the next
  ``half_open_successes`` successful outcomes close the breaker, a
  single failure re-opens it.

Everything is driven by counters and the simulation's virtual clock —
no RNG, no wall time — so breaker trajectories are a pure function of
the (seeded) outcome stream and chaos runs stay byte-reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchedulerError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables shared by every breaker of one health tracker."""

    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 5
    #: Virtual time an open breaker waits before probing (half-open).
    cooldown: float = 25.0
    #: Consecutive half-open successes required to close again.
    half_open_successes: int = 2
    #: Injected latency at or above this counts as a failure signal
    #: (``None`` disables the latency channel).
    slow_latency: float | None = None

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise SchedulerError(
                f"breaker failure_threshold must be >= 1 "
                f"(got {self.failure_threshold!r})"
            )
        if self.cooldown <= 0:
            raise SchedulerError(
                f"breaker cooldown must be > 0 (got {self.cooldown!r})"
            )
        if self.half_open_successes < 1:
            raise SchedulerError(
                f"breaker half_open_successes must be >= 1 "
                f"(got {self.half_open_successes!r})"
            )
        if self.slow_latency is not None and self.slow_latency <= 0:
            raise SchedulerError(
                f"breaker slow_latency must be > 0 "
                f"(got {self.slow_latency!r})"
            )


#: One state transition: (from-state value, to-state value, reason).
Transition = tuple[str, str, str]


@dataclass
class CircuitBreaker:
    """The three-state machine of one subsystem."""

    subsystem: str
    config: BreakerConfig
    state: BreakerState = BreakerState.CLOSED
    failure_streak: int = 0
    probe_successes: int = 0
    opened_at: float = 0.0
    #: Lifetime count of closed→open (and half-open→open) trips.
    opens: int = 0

    def poke(self, now: float) -> Transition | None:
        """Advance time-driven transitions (open → half-open)."""
        if (
            self.state is BreakerState.OPEN
            and now >= self.opened_at + self.config.cooldown
        ):
            self.state = BreakerState.HALF_OPEN
            self.probe_successes = 0
            return ("open", "half-open", "cooldown-elapsed")
        return None

    def record_success(self, now: float) -> list[Transition]:
        transitions = []
        poked = self.poke(now)
        if poked is not None:
            transitions.append(poked)
        self.failure_streak = 0
        if self.state is BreakerState.HALF_OPEN:
            self.probe_successes += 1
            if self.probe_successes >= self.config.half_open_successes:
                self.state = BreakerState.CLOSED
                self.probe_successes = 0
                transitions.append(
                    ("half-open", "closed", "probe-successes")
                )
        return transitions

    def record_failure(
        self, now: float, signal: str
    ) -> list[Transition]:
        """Count one failure signal ("failure", "outage", ...)."""
        transitions = []
        poked = self.poke(now)
        if poked is not None:
            transitions.append(poked)
        if self.state is BreakerState.HALF_OPEN:
            # A probe failed: straight back to open, cooldown restarts.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.opens += 1
            self.failure_streak = 0
            transitions.append(("half-open", "open", f"probe-{signal}"))
        elif self.state is BreakerState.CLOSED:
            self.failure_streak += 1
            if self.failure_streak >= self.config.failure_threshold:
                self.state = BreakerState.OPEN
                self.opened_at = now
                self.opens += 1
                self.failure_streak = 0
                transitions.append(
                    ("closed", "open", f"{signal}-threshold")
                )
        # Failures while already open change nothing: the subsystem is
        # known-bad and the cooldown keeps counting from the trip.
        return transitions

    def rebase_clock(self) -> None:
        """Restart the cooldown at virtual time zero (crash recovery).

        A recovered manager's engine restarts at ``now == 0``; keeping
        the pre-crash ``opened_at`` would make the cooldown appear
        already elapsed (or never elapse).  Restarting it is the
        conservative deterministic choice.
        """
        if self.state is BreakerState.OPEN:
            self.opened_at = 0.0


class SubsystemHealth:
    """Lazy per-subsystem breaker registry (insertion-ordered)."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, subsystem: str) -> CircuitBreaker:
        breaker = self._breakers.get(subsystem)
        if breaker is None:
            breaker = CircuitBreaker(
                subsystem=subsystem, config=self.config
            )
            self._breakers[subsystem] = breaker
        return breaker

    def on_success(
        self, subsystem: str, now: float
    ) -> list[Transition]:
        return self.breaker(subsystem).record_success(now)

    def on_failure(
        self, subsystem: str, now: float, signal: str
    ) -> list[Transition]:
        return self.breaker(subsystem).record_failure(now, signal)

    def poke_all(
        self, now: float
    ) -> list[tuple[str, Transition]]:
        """Advance every breaker's time-driven transitions."""
        fired = []
        for name, breaker in self._breakers.items():
            transition = breaker.poke(now)
            if transition is not None:
                fired.append((name, transition))
        return fired

    def open_subsystems(self, now: float) -> tuple[str, ...]:
        """Subsystems whose breaker is OPEN at virtual time ``now``."""
        return tuple(
            sorted(
                name
                for name, breaker in self._breakers.items()
                if breaker.state is BreakerState.OPEN
            )
        )

    def degraded(self) -> bool:
        """Whether any breaker is away from CLOSED."""
        return any(
            breaker.state is not BreakerState.CLOSED
            for breaker in self._breakers.values()
        )

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Debug/report view of every breaker."""
        return {
            name: {
                "state": breaker.state.value,
                "failure_streak": breaker.failure_streak,
                "opens": breaker.opens,
                "opened_at": breaker.opened_at,
            }
            for name, breaker in sorted(self._breakers.items())
        }

    def rebase_clock(self) -> None:
        for breaker in self._breakers.values():
            breaker.rebase_clock()
