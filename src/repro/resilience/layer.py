"""The resilience layer: admission shedding + adaptive ``Wcc*``.

A :class:`ResilienceLayer` is attached to a manager via
``ManagerConfig(resilience=ResilienceLayer(...))``.  It closes the loop
between observed subsystem health (:mod:`repro.resilience.health`) and
the two levers the protocol already has:

* **admission gating** — a new process whose program needs an
  OPEN-breaker subsystem is *deferred*: its initiation is rescheduled
  ``admission_retry_delay`` of virtual time later, before any timestamp
  is drawn or lock is requested.  Running processes are never touched,
  so guaranteed termination is preserved; a bounded defer budget
  (``max_admission_defers``) force-admits stragglers so admission can
  never live-lock even if a subsystem stays down forever.  Half-open
  breakers admit — probe traffic is what closes a breaker again.
* **adaptive degradation** — while any breaker is open, the effective
  ``Wcc*`` of every classification is capped at ``degraded_wcc_cap``
  (see :func:`repro.core.cost_based.degraded_threshold`), inserting
  pseudo pivots earlier so in-flight processes cheapen their worst case;
  the cap lifts as soon as every breaker closes.

Every breaker transition, admission decision, and degradation flip is
emitted as a typed :mod:`repro.obs` event with its reason.  The layer is
deterministic: it draws no randomness and reads only the virtual clock.

One layer instance serves one *logical* run: a manager crash/recovery
re-binds the same layer to the recovered manager (pending deferred
admissions are rescheduled on the new engine; breaker cooldowns rebase
to the restarted clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_based import degraded_threshold
from repro.obs.events import (
    AdmissionGate,
    BackpressureEngaged,
    BreakerTransition,
    DegradationChanged,
)
from repro.resilience.health import (
    BreakerConfig,
    SubsystemHealth,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables of one resilience layer."""

    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Effective ``Wcc*`` cap while any breaker is open.  Classification
    #: uses ``min(program threshold, cap)`` — a *cap*, not a multiplier,
    #: so programs with an infinite threshold degrade too.
    degraded_wcc_cap: float = 15.0
    #: Virtual-time delay before a shed admission is retried.
    admission_retry_delay: float = 5.0
    #: Defer budget per process before it is admitted regardless.
    max_admission_defers: int = 16
    #: Shard-queue backpressure cap: a new process is paused at the door
    #: while any shard it needs has this much live work queued
    #: (in-flight + parked).  ``None`` (the default) disables the gate
    #: entirely — runs stay byte-identical to the pre-backpressure
    #: behaviour.
    shard_queue_cap: int | None = None
    #: Cap multiplier for shards whose subsystem breaker is open: a
    #: degraded shard saturates earlier, shifting load away from it
    #: while it recovers.
    degraded_queue_factor: float = 0.5
    #: Virtual-time delay before a backpressured admission is retried.
    backpressure_retry_delay: float = 5.0
    #: Defer budget per process before backpressure force-admits it.
    max_backpressure_defers: int = 16


@dataclass
class ResilienceStats:
    """What the layer actually did during one logical run."""

    admissions_deferred: int = 0
    admissions_readmitted: int = 0
    admissions_forced: int = 0
    backpressure_deferred: int = 0
    backpressure_forced: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    degradations: int = 0
    recoveries: int = 0
    outage_hits: int = 0
    retry_exhaustions: int = 0
    slow_signals: int = 0


class ResilienceLayer:
    """Runtime fault response bound to one (logical) manager run."""

    def __init__(self, config: ResilienceConfig | None = None) -> None:
        self.config = config or ResilienceConfig()
        self.health = SubsystemHealth(self.config.breaker)
        self.stats = ResilienceStats()
        self._manager = None
        self._degraded = False
        #: pid -> times its admission has been deferred so far.
        self._defers: dict[int, int] = {}
        #: pid -> times backpressure has paused its admission so far.
        self._bp_defers: dict[int, int] = {}
        #: Deferred admissions pending re-initiation (pid -> program).
        #: Needed across manager crashes: a pending ``_initiate``
        #: callback dies with the crashed engine, so ``bind`` reschedules
        #: every entry on the recovered manager.
        self._pending: dict[int, object] = {}
        #: id(program) -> subsystems its activities need (cached).
        self._needs_cache: dict[int, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, manager) -> None:
        """Attach to a manager (called from ``ProcessManager.__init__``).

        On re-bind after a crash the breaker cooldowns rebase to the
        recovered engine's restarted clock and every pending deferred
        admission is rescheduled — without this, shed processes would be
        silently lost on crash (they are not in the crash journal, which
        only covers *initiated* processes).
        """
        self._manager = manager
        self.health.rebase_clock()
        delay = self.config.admission_retry_delay
        for pid, program in list(self._pending.items()):
            manager.engine.schedule(
                delay,
                lambda pid=pid, program=program: manager._initiate(
                    pid, program
                ),
            )
        setattr(
            manager.protocol,
            "threshold_provider",
            self.effective_threshold,
        )

    @property
    def _now(self) -> float:
        return self._manager.engine.now if self._manager else 0.0

    # ------------------------------------------------------------------
    # health-signal hooks (called by manager and injector)
    # ------------------------------------------------------------------
    def on_activity_outcome(self, subsystem: str, failed: bool) -> None:
        """Outcome of a completed non-retriable activity."""
        now = self._now
        if failed:
            transitions = self.health.on_failure(
                subsystem, now, "failure"
            )
        else:
            transitions = self.health.on_success(subsystem, now)
        self._apply(subsystem, transitions)

    def on_outage_hit(self, subsystem: str) -> None:
        """An activity hit an injected outage window."""
        self.stats.outage_hits += 1
        self._apply(
            subsystem,
            self.health.on_failure(subsystem, self._now, "outage"),
        )

    def on_retry_exhausted(self, subsystem: str) -> None:
        """A retriable activity burned through its retry budget."""
        self.stats.retry_exhaustions += 1
        self._apply(
            subsystem,
            self.health.on_failure(
                subsystem, self._now, "retry-exhausted"
            ),
        )

    def on_latency(self, subsystem: str, extra: float) -> None:
        """Injected latency observed on one activity execution."""
        slow = self.config.breaker.slow_latency
        if slow is None or extra < slow:
            return
        self.stats.slow_signals += 1
        self._apply(
            subsystem,
            self.health.on_failure(subsystem, self._now, "slow"),
        )

    # ------------------------------------------------------------------
    # admission gating (called from ProcessManager._initiate)
    # ------------------------------------------------------------------
    def admission_delay(self, pid: int, program) -> float | None:
        """``None`` to admit ``pid`` now, else the defer delay.

        Sheds strictly before the first lock is granted: a deferred
        process has no timestamp, holds nothing, and blocks nobody.
        """
        now = self._now
        for subsystem, transition in self.health.poke_all(now):
            self._emit_transition(subsystem, transition)
        needed = self._subsystems_of(program)
        blocked = [
            name
            for name in needed
            if name in self.health.open_subsystems(now)
        ]
        if not blocked:
            if pid in self._pending:
                del self._pending[pid]
                count = self._defers.pop(pid, 0)
                self.stats.admissions_readmitted += 1
                self._emit_admission(
                    pid, "readmit", tuple(blocked), count
                )
            return None
        count = self._defers.get(pid, 0) + 1
        if count > self.config.max_admission_defers:
            # Budget spent: admit anyway so a permanently dark
            # subsystem cannot starve admissions forever.
            self._pending.pop(pid, None)
            self._defers.pop(pid, None)
            self.stats.admissions_forced += 1
            self._emit_admission(
                pid, "force-admit", tuple(blocked), count
            )
            return None
        self._defers[pid] = count
        self._pending[pid] = program
        self.stats.admissions_deferred += 1
        self._emit_admission(pid, "defer", tuple(blocked), count)
        return self.config.admission_retry_delay

    def discard_pending(self, pid: int) -> None:
        """Forget a deferred admission whose process was cancelled.

        Called by :meth:`ProcessManager.cancel` when it drops a
        not-yet-initiated process: without this, a crash/recovery
        re-bind would resurrect the cancelled admission from
        ``_pending``.
        """
        self._pending.pop(pid, None)
        self._defers.pop(pid, None)
        self._bp_defers.pop(pid, None)

    def backpressure_delay(
        self, pid: int, program, depth_of
    ) -> float | None:
        """``None`` to admit ``pid`` now, else the backpressure delay.

        Called by the manager *after* the breaker-driven admission gate
        passed; ``depth_of(subsystem)`` answers the live queue depth of
        one shard (in-flight + parked work).  A program needing a
        saturated shard is paused — with the cap halved (by
        ``degraded_queue_factor``) for shards whose subsystem breaker is
        open, so degraded shards shed load earlier.  Like the admission
        gate, a bounded defer budget force-admits stragglers, so
        backpressure can never live-lock admissions.
        """
        cap = self.config.shard_queue_cap
        if cap is None:
            return None
        now = self._now
        for subsystem, transition in self.health.poke_all(now):
            self._emit_transition(subsystem, transition)
        open_now = self.health.open_subsystems(now)
        saturated = []
        for name in self._subsystems_of(program):
            limit = cap
            if name in open_now:
                limit = max(
                    1, int(cap * self.config.degraded_queue_factor)
                )
            if depth_of(name) >= limit:
                saturated.append(name)
        if not saturated:
            self._bp_defers.pop(pid, None)
            return None
        count = self._bp_defers.get(pid, 0) + 1
        if count > self.config.max_backpressure_defers:
            self._bp_defers.pop(pid, None)
            self.stats.backpressure_forced += 1
            self._emit_backpressure(
                pid, "force-admit", tuple(saturated), count
            )
            return None
        self._bp_defers[pid] = count
        self.stats.backpressure_deferred += 1
        self._emit_backpressure(pid, "defer", tuple(saturated), count)
        return self.config.backpressure_retry_delay

    def _subsystems_of(self, program) -> tuple[str, ...]:
        key = id(program)
        needed = self._needs_cache.get(key)
        if needed is None:
            registry = program.registry
            needed = tuple(
                sorted(
                    {
                        registry.get(name).subsystem
                        for name in program.activity_names()
                    }
                )
            )
            self._needs_cache[key] = needed
        return needed

    # ------------------------------------------------------------------
    # adaptive Wcc* (installed as the protocol's threshold_provider)
    # ------------------------------------------------------------------
    def effective_threshold(self, process) -> float:
        """The ``Wcc*`` classification should use for ``process``."""
        base = process.program.wcc_threshold
        if self._degraded:
            # Let cooldowns fire even when no new failure signal
            # arrives — classification time is the relax opportunity.
            now = self._now
            for subsystem, transition in self.health.poke_all(now):
                self._emit_transition(subsystem, transition)
            self._refresh_degradation()
        if self._degraded:
            return degraded_threshold(
                base, self.config.degraded_wcc_cap
            )
        return base

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _apply(self, subsystem: str, transitions) -> None:
        for transition in transitions:
            self._emit_transition(subsystem, transition)
        if transitions:
            self._refresh_degradation()

    def _emit_transition(self, subsystem: str, transition) -> None:
        from_state, to_state, reason = transition
        if to_state == "open":
            self.stats.breaker_opens += 1
        elif to_state == "closed":
            self.stats.breaker_closes += 1
        tracer = self._manager.tracer if self._manager else None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                BreakerTransition(
                    subsystem=subsystem,
                    from_state=from_state,
                    to_state=to_state,
                    reason=reason,
                    opens=self.health.breaker(subsystem).opens,
                )
            )

    def _refresh_degradation(self) -> None:
        # HALF_OPEN still counts as degraded: the subsystem has not
        # proven itself yet, so the tightened Wcc* stays on until the
        # probes close the breaker.
        degraded = self.health.degraded()
        if degraded == self._degraded:
            return
        self._degraded = degraded
        if degraded:
            self.stats.degradations += 1
            reason = "breaker-open"
        else:
            self.stats.recoveries += 1
            reason = "all-breakers-closed"
        tracer = self._manager.tracer if self._manager else None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                DegradationChanged(
                    active=degraded,
                    cap=self.config.degraded_wcc_cap,
                    reason=reason,
                    open_subsystems=self.health.open_subsystems(
                        self._now
                    ),
                )
            )

    def _emit_admission(
        self,
        pid: int,
        op: str,
        subsystems: tuple[str, ...],
        deferrals: int,
    ) -> None:
        tracer = self._manager.tracer if self._manager else None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                AdmissionGate(
                    pid=pid,
                    op=op,
                    subsystems=subsystems,
                    deferrals=deferrals,
                )
            )

    def _emit_backpressure(
        self,
        pid: int,
        op: str,
        subsystems: tuple[str, ...],
        deferrals: int,
    ) -> None:
        tracer = self._manager.tracer if self._manager else None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                BackpressureEngaged(
                    pid=pid,
                    op=op,
                    subsystems=subsystems,
                    deferrals=deferrals,
                )
            )
