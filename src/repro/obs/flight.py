"""Bounded in-memory flight recorder for the last N trace events.

The recorder is a thread-safe ring buffer of ``(seq, t, event)``
triples.  Appending is O(1) and never flattens the event — records are
built lazily at dump time, so a recorder in the service emit path costs
one deque append per event.  Dumps go out as the same JSONL format the
exporters write, so ``repro explain`` and :func:`replay_metrics` work
on a crash dump exactly as on a full trace.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.events import event_payload

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring buffer of the last ``capacity`` emitted events."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Lifetime appends (events seen), not just the retained window.
        self.appended = 0
        #: How many dumps were taken.
        self.dumps = 0

    def append(self, seq: int, t: float, event) -> None:
        with self._lock:
            self._ring.append((seq, t, event))
            self.appended += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self) -> list[dict]:
        """Flat record dictionaries for the retained window (oldest
        first), flattened only now.

        Non-finite floats are already replaced with their JSONL string
        stand-ins (see :func:`repro.obs.export._jsonable`), so the
        records are strict-JSON safe for the wire; apply
        :func:`repro.obs.export._restore` to get numeric values back.
        """
        from repro.obs.export import _jsonable

        with self._lock:
            window = list(self._ring)
            self.dumps += 1
        records = []
        for seq, t, event in window:
            record = {"seq": seq, "t": t, "kind": event.kind}
            record.update(event_payload(event))
            records.append(_jsonable(record))
        return records

    def dump_jsonl(self, path) -> int:
        """Write the retained window as JSONL; returns records written."""
        from repro.obs.export import write_jsonl

        records = self.snapshot()
        write_jsonl(records, path)
        return len(records)
