"""Typed trace events emitted by the instrumented simulation layers.

Every event is a plain dataclass carrying *why* something happened, not
just that it did: defers name the blocking holders (pid, timestamp, held
lock modes) and the paper rule that fired; cascades name the victims and
the timestamp comparison that doomed them; grants carry the sharing
position the lock was appended at.

Events do **not** carry their own clock — the
:class:`~repro.obs.tracer.Tracer` stamps each emit with the virtual time
and a global sequence number, and serializes the pair together with the
payload (see :meth:`~repro.obs.tracer.Stamped.to_record`).  The flat
record dictionaries are what the JSONL log, the exporters, and the
explain replay consume.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.decisions import (  # noqa: F401  (re-exported)
    RULE_BY_REASON,
    rule_for_reason,
)


@dataclass(frozen=True, slots=True)
class Holder:
    """One blocking lock holder as seen at decision time."""

    pid: int
    timestamp: int
    #: Lock modes the holder currently has on the table ("C", "P", or
    #: "CP"); empty when the holder holds no locks (e.g. a cascade
    #: victim whose abort the requester awaits).
    modes: str = ""

    def describe(self) -> str:
        mode = f" holding {self.modes}" if self.modes else ""
        return f"P{self.pid} (ts {self.timestamp}){mode}"


# ----------------------------------------------------------------------
# process lifecycle
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ProcessSubmitted:
    kind = "process.submit"
    pid: int


@dataclass(frozen=True, slots=True)
class ProcessInitiated:
    kind = "process.init"
    pid: int
    timestamp: int
    incarnation: int = 0


@dataclass(frozen=True, slots=True)
class ProcessCommitted:
    kind = "process.commit"
    pid: int
    incarnation: int


@dataclass(frozen=True, slots=True)
class AbortBegun:
    """A process starts its abort-process execution."""

    kind = "process.abort-begin"
    pid: int
    incarnation: int
    #: "cascade", "deadlock", "self", "intrinsic", "subprocess", or
    #: "cancel" (client cancel of a running process, service front
    #: door).
    cause: str


@dataclass(frozen=True, slots=True)
class ProcessAborted:
    kind = "process.abort"
    pid: int
    incarnation: int
    resubmit: bool


@dataclass(frozen=True, slots=True)
class ProcessResubmitted:
    """A cascade victim restarts with its *original* timestamp."""

    kind = "process.resubmit"
    pid: int
    incarnation: int
    timestamp: int


@dataclass(frozen=True, slots=True)
class ProcessCancelled:
    """A client explicitly cancelled the process (service front door).

    ``initiated`` distinguishes a cancel that had to abort a running
    process (compensations ran, no resubmission) from one that caught
    the process before initiation (nothing to undo — the scheduled
    initiation callback is simply dropped).
    """

    kind = "process.cancel"
    pid: int
    initiated: bool


# ----------------------------------------------------------------------
# protocol decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LockGranted:
    kind = "lock.grant"
    pid: int
    incarnation: int
    #: "regular", "compensation", or "commit" (a commit grant carries no
    #: activity or position).
    request: str
    activity: str | None
    uid: int | None
    mode: str | None
    #: Global sharing position of the acquired lock entry.
    position: int | None = None


@dataclass(frozen=True, slots=True)
class LockDeferred:
    kind = "lock.defer"
    pid: int
    incarnation: int
    timestamp: int
    request: str
    activity: str | None
    uid: int | None
    mode: str | None
    reason: str
    rule: str
    blockers: tuple[Holder, ...] = ()


@dataclass(frozen=True, slots=True)
class CascadeRequested:
    """Timestamp order sacrifices the named running holders."""

    kind = "lock.cascade"
    pid: int
    incarnation: int
    timestamp: int
    request: str
    activity: str | None
    uid: int | None
    mode: str | None
    victims: tuple[Holder, ...] = ()


@dataclass(frozen=True, slots=True)
class SelfAbortDecision:
    """The protocol told the *requester* to abort (baselines only)."""

    kind = "lock.self-abort"
    pid: int
    incarnation: int
    timestamp: int
    request: str
    activity: str | None
    reason: str
    rule: str


@dataclass(frozen=True, slots=True)
class LockConverted:
    """One Comp→Piv conversion (C lock upgraded to P in place)."""

    kind = "lock.convert"
    pid: int
    type_name: str
    position: int


@dataclass(frozen=True, slots=True)
class ActivityClassified:
    """Figure-1 treatment decision, with the Wcc charge that drove it."""

    kind = "wcc.classify"
    pid: int
    incarnation: int
    activity: str
    mode: str
    wcc: float
    threshold: float
    pseudo_pivot: bool
    real_pivot: bool


# ----------------------------------------------------------------------
# activity execution spans
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ActivityStarted:
    kind = "activity.start"
    pid: int
    incarnation: int
    activity: str
    uid: int
    compensation: bool = False
    #: Shard worker owning the activity's type under parallel execution;
    #: ``None`` on the sequential manager.
    worker: int | None = None


@dataclass(frozen=True, slots=True)
class ActivityRetried:
    kind = "activity.retry"
    pid: int
    activity: str
    uid: int
    attempt: int


@dataclass(frozen=True, slots=True)
class ActivityCommitted:
    kind = "activity.commit"
    pid: int
    incarnation: int
    activity: str
    uid: int
    compensation: bool = False


@dataclass(frozen=True, slots=True)
class ActivityFailed:
    kind = "activity.fail"
    pid: int
    incarnation: int
    activity: str
    uid: int


@dataclass(frozen=True, slots=True)
class ActivityCancelled:
    """An in-flight activity of an abort victim was torn down."""

    kind = "activity.cancel"
    pid: int
    incarnation: int
    activity: str
    uid: int


# ----------------------------------------------------------------------
# wait-for bookkeeping and deadlock resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WaitEdge:
    """Insertion or deletion of parked wait-for edges.

    One event covers the whole edge fan (waiter → each blocker) of one
    parked request; ``seq`` is the manager's park sequence, which pairs
    the delete with its insert for blocked-time accounting.
    """

    kind = "wait.edge"
    op: str  # "insert" | "delete"
    waiter: int
    blockers: tuple[int, ...]
    seq: int
    request: str
    activity: str | None
    reason: str
    #: Lock shard (subsystem) of the requested activity's type; ``None``
    #: for commit requests, which span all of the process's shards.
    shard: str | None = None
    #: Shard worker owning that shard under parallel execution.
    worker: int | None = None


@dataclass(frozen=True, slots=True)
class DeadlockVictim:
    kind = "deadlock.victim"
    pid: int
    cycle: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class UnresolvableForced:
    """Forced progress through an unresolvable wait cycle (baselines)."""

    kind = "deadlock.forced"
    pid: int
    request: str
    cycle: tuple[int, ...] = ()


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FaultInjected:
    """One fault-injector action (any channel)."""

    kind = "fault.inject"
    #: "failure", "retry", "latency", "outage", "subsystem-crash",
    #: "manager-crash", or "manager-recover".
    channel: str
    pid: int | None = None
    activity: str | None = None
    detail: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# resilience (circuit breakers, admission gating, adaptive Wcc*)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BreakerTransition:
    """One circuit-breaker state change, with the signal that drove it."""

    kind = "resilience.breaker"
    subsystem: str
    from_state: str  # "closed" | "open" | "half-open"
    to_state: str
    #: e.g. "failure-threshold", "outage-threshold", "cooldown-elapsed",
    #: "probe-successes", "probe-failure".
    reason: str
    #: Lifetime trip count of this breaker (after this transition).
    opens: int = 0


@dataclass(frozen=True, slots=True)
class AdmissionGate:
    """An admission decision of the resilience layer."""

    kind = "resilience.admission"
    pid: int
    op: str  # "defer" | "readmit" | "force-admit"
    #: Open-breaker subsystems that blocked the admission (empty on
    #: readmit).
    subsystems: tuple[str, ...] = ()
    #: How many times this pid has been deferred so far.
    deferrals: int = 0


@dataclass(frozen=True, slots=True)
class BackpressureEngaged:
    """A shard-queue backpressure decision of the resilience layer."""

    kind = "resilience.backpressure"
    pid: int
    op: str  # "defer" | "force-admit"
    #: Saturated shards (subsystems) that paused the admission.
    subsystems: tuple[str, ...] = ()
    #: How many times this pid has been backpressured so far.
    deferrals: int = 0


@dataclass(frozen=True, slots=True)
class DegradationChanged:
    """The adaptive ``Wcc*`` cap engaged or lifted."""

    kind = "resilience.degrade"
    active: bool
    cap: float
    reason: str  # "breaker-open" | "all-breakers-closed"
    open_subsystems: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class RetryBudgetExhausted:
    """A retry budget forced a failing retriable to count as success.

    With a bounded :class:`~repro.faults.retry.RetryPolicy` installed,
    an injected-failing retriable activity that reaches
    ``max_attempts`` is treated as successful to preserve guaranteed
    termination; this event makes that (previously silent) decision
    visible.
    """

    kind = "retry.budget_exhausted"
    pid: int
    activity: str
    uid: int
    attempts: int
    subsystem: str | None = None


# ----------------------------------------------------------------------
# durable storage (repro.storage)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class StoreRecovered:
    """Startup recovery finished replaying the durable store.

    ``adopted`` processes resumed mid-flight from the snapshot,
    ``resubmitted`` undecided submissions were re-scheduled under
    their original pids, and ``restored`` finished processes came back
    from terminal journal records without re-execution.
    """

    kind = "store.recovered"
    backend: str
    adopted: int
    resubmitted: int
    restored: int
    journal_records: int
    healed_namespaces: int
    #: Wall-clock recovery time (replay progress metric).
    seconds: float


@dataclass(frozen=True, slots=True)
class StoreSnapshot:
    """A checkpoint of the live crash image was swapped in."""

    kind = "store.snapshot"
    #: Live processes captured in the image.
    processes: int
    #: Journal length the snapshot covers (its replay watermark).
    journal_lsn: int


@dataclass(frozen=True, slots=True)
class StoreTornTail:
    """Recovery truncated an incomplete record at the end of a log.

    A torn tail is the signature of a crash mid-append; truncating to
    the last complete CRC-valid frame is deterministic and loses only
    the record(s) that were never acknowledged as durable.
    """

    kind = "store.torn_tail"
    namespace: str
    dropped_bytes: int


#: kind tag -> event class, for JSONL round-trips and exporters.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        ProcessSubmitted,
        ProcessInitiated,
        ProcessCommitted,
        AbortBegun,
        ProcessAborted,
        ProcessCancelled,
        ProcessResubmitted,
        LockGranted,
        LockDeferred,
        CascadeRequested,
        SelfAbortDecision,
        LockConverted,
        ActivityClassified,
        ActivityStarted,
        ActivityRetried,
        ActivityCommitted,
        ActivityFailed,
        ActivityCancelled,
        WaitEdge,
        DeadlockVictim,
        UnresolvableForced,
        FaultInjected,
        BreakerTransition,
        AdmissionGate,
        BackpressureEngaged,
        DegradationChanged,
        RetryBudgetExhausted,
        StoreRecovered,
        StoreSnapshot,
        StoreTornTail,
    )
}


def event_payload(event) -> dict:
    """Flat JSON-ready payload of one event (without stamp fields)."""
    return asdict(event)
