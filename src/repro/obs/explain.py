"""Replay a JSONL trace into a causal account of one process's fate.

``repro explain <pid>`` answers the questions end-of-run aggregates
cannot: *why* did this process defer (which holder, which lock mode,
which rule), who cascade-aborted it (and which timestamp comparison
doomed it), how long was it parked, and how did it finally terminate.

The replay consumes the flat record dictionaries of a JSONL event log
(:func:`repro.obs.export.read_jsonl`); it never needs the live
simulation objects, so traces can be explained long after the run.
"""

from __future__ import annotations


def deferred_pids(records: list[dict]) -> list[int]:
    """Pids that suffered at least one deferment, most-deferred first."""
    counts: dict[int, int] = {}
    for record in records:
        if record["kind"] == "lock.defer":
            counts[record["pid"]] = counts.get(record["pid"], 0) + 1
    return sorted(counts, key=lambda pid: (-counts[pid], pid))


def _describe_holder(holder: dict) -> str:
    mode = f" holding {holder['modes']}" if holder.get("modes") else ""
    return f"P{holder['pid']} (ts {holder['timestamp']}){mode}"


def _park_durations(
    records: list[dict], pid: int
) -> tuple[
    dict[int, float],
    dict[int, float],
    dict[int, str | None],
    dict[int, int | None],
]:
    """Map park seq -> insert time, parked duration, lock shard, and
    shard worker for ``pid``.

    A request still parked when the trace ends has no delete event and
    therefore no duration entry.  The shard is the subsystem whose lock
    list the parked request contends on (``None`` for commit requests,
    which span shards); the worker is the shard's owning worker under
    parallel execution (``None`` on sequential runs).
    """
    inserted: dict[int, float] = {}
    durations: dict[int, float] = {}
    shards: dict[int, str | None] = {}
    workers: dict[int, int | None] = {}
    for record in records:
        if record["kind"] != "wait.edge" or record["waiter"] != pid:
            continue
        if record["op"] == "insert":
            inserted[record["seq"]] = record["t"]
            shards[record["seq"]] = record.get("shard")
            workers[record["seq"]] = record.get("worker")
        elif record["seq"] in inserted:
            durations[record["seq"]] = (
                record["t"] - inserted[record["seq"]]
            )
    return inserted, durations, shards, workers


def _request_label(record: dict) -> str:
    activity = record.get("activity")
    if record["request"] == "commit" or activity is None:
        return record["request"]
    mode = record.get("mode")
    lock = f" ({mode} lock)" if mode else ""
    return f"{record['request']} {activity!r}{lock}"


def explain_process(records: list[dict], pid: int) -> str:
    """Human-readable causal account of process ``pid``.

    Raises
    ------
    ValueError
        If the trace contains no event for ``pid``.
    """
    inserted, durations, park_shards, park_workers = _park_durations(
        records, pid
    )
    # Pair each defer with its park (same waiter, same time, in order)
    # to attach the parked duration to the defer line.
    park_seqs = sorted(inserted)
    park_index = 0
    lines: list[str] = []
    defers = 0
    cascades_suffered = 0
    resubmissions = 0
    blocked_total = sum(durations.values())
    outcome = "still live at end of trace"
    seen = False

    def add(t: float, text: str) -> None:
        lines.append(f"  vt {t:>8.2f}  {text}")

    for record in records:
        t = record["t"]
        kind = record["kind"]
        if kind == "lock.cascade" and record.get("pid") != pid:
            for victim in record.get("victims", ()):
                if victim["pid"] == pid:
                    seen = True
                    cascades_suffered += 1
                    add(
                        t,
                        f"CASCADE-ABORTED by P{record['pid']} "
                        f"(ts {record['timestamp']}) requesting "
                        f"{_request_label(record)}: holder ts "
                        f"{victim['timestamp']} lost the timestamp "
                        f"comparison",
                    )
            continue
        if record.get("pid") != pid:
            continue
        seen = True
        if kind == "process.submit":
            add(t, "submitted")
        elif kind == "process.init":
            add(
                t,
                f"initiated with timestamp {record['timestamp']} "
                f"(incarnation {record['incarnation']})",
            )
        elif kind == "wcc.classify":
            treatment = (
                "pivot"
                if record["real_pivot"]
                else "pseudo-pivot" if record["pseudo_pivot"] else None
            )
            if treatment is not None:
                add(
                    t,
                    f"{record['activity']!r} treated as {treatment} "
                    f"(Wcc {record['wcc']:g} vs Wcc* "
                    f"{record['threshold']:g}) -> P lock",
                )
        elif kind == "lock.grant":
            if record["request"] == "commit":
                add(t, "commit allowed (no lock on hold)")
            else:
                add(
                    t,
                    f"granted {record['mode']}({record['activity']}) "
                    f"at position {record['position']}",
                )
        elif kind == "lock.defer":
            defers += 1
            holders = ", ".join(
                _describe_holder(h) for h in record["blockers"]
            )
            text = (
                f"DEFERRED {_request_label(record)} — "
                f"reason '{record['reason']}' [{record['rule']}]; "
                f"blocked by {holders or 'terminating processes'}"
            )
            while park_index < len(park_seqs):
                seq = park_seqs[park_index]
                if inserted[seq] < t:
                    park_index += 1
                    continue
                if inserted[seq] == t:
                    park_index += 1
                    if park_shards.get(seq):
                        text += f" [shard {park_shards[seq]}]"
                    if park_workers.get(seq) is not None:
                        # worker 0 is a real worker — test against None
                        text += f" [worker {park_workers[seq]}]"
                    if seq in durations:
                        text += (
                            f"; parked for {durations[seq]:g} vt"
                        )
                break
            add(t, text)
        elif kind == "lock.cascade":
            victims = ", ".join(
                _describe_holder(v) for v in record["victims"]
            )
            add(
                t,
                f"requested cascade abort of {victims} to serve "
                f"{_request_label(record)} (requester ts "
                f"{record['timestamp']} is older)",
            )
        elif kind == "lock.self-abort":
            add(
                t,
                f"told to SELF-ABORT on {_request_label(record)} — "
                f"reason '{record['reason']}' [{record['rule']}]",
            )
        elif kind == "lock.convert":
            add(
                t,
                f"C({record['type_name']}) converted to P "
                f"(Comp→Piv-Rule, position {record['position']})",
            )
        elif kind == "activity.fail":
            add(t, f"activity {record['activity']!r} failed")
        elif kind == "activity.retry":
            add(
                t,
                f"activity {record['activity']!r} retrying "
                f"(attempt {record['attempt']})",
            )
        elif kind == "activity.cancel":
            add(
                t,
                f"in-flight {record['activity']!r} torn down by abort",
            )
        elif kind == "deadlock.victim":
            cycle = " -> ".join(f"P{p}" for p in record["cycle"])
            add(t, f"chosen as deadlock victim (cycle {cycle})")
        elif kind == "deadlock.forced":
            add(
                t,
                f"forced through an unresolvable cycle "
                f"({record['request']})",
            )
        elif kind == "process.abort-begin":
            add(t, f"abort started (cause: {record['cause']})")
        elif kind == "process.cancel":
            outcome = "cancelled"
            add(
                t,
                "CANCELLED by client"
                + (
                    " (running: abort-process executes, no "
                    "resubmission)"
                    if record["initiated"]
                    else " (before initiation: dropped)"
                ),
            )
        elif kind == "process.abort":
            if outcome != "cancelled":
                outcome = "aborted"
            tail = (
                "resubmission scheduled"
                if record["resubmit"]
                else "terminal"
            )
            add(t, f"abort-process execution finished ({tail})")
        elif kind == "process.resubmit":
            resubmissions += 1
            add(
                t,
                f"resubmitted as incarnation {record['incarnation']} "
                f"keeping original timestamp {record['timestamp']}",
            )
        elif kind == "process.commit":
            outcome = "committed"
            add(t, "COMMITTED")
        elif kind == "retry.budget_exhausted":
            add(
                t,
                f"retry budget exhausted on {record['activity']!r} "
                f"after {record['attempts']} attempts — treated as "
                f"success to preserve termination",
            )
        elif kind == "resilience.admission":
            op = record["op"]
            if op == "defer":
                subsystems = ", ".join(record.get("subsystems", ()))
                add(
                    t,
                    f"admission DEFERRED by resilience layer "
                    f"(open breakers: {subsystems}; "
                    f"deferral {record['deferrals']})",
                )
            elif op == "readmit":
                add(
                    t,
                    f"re-admitted after "
                    f"{record['deferrals']} deferral(s)",
                )
            else:
                add(
                    t,
                    f"force-admitted after exhausting "
                    f"{record['deferrals']} deferrals",
                )
        elif kind == "resilience.backpressure":
            op = record["op"]
            subsystems = ", ".join(record.get("subsystems", ()))
            if op == "defer":
                add(
                    t,
                    f"admission BACKPRESSURED by saturated shard(s) "
                    f"{subsystems} (deferral {record['deferrals']})",
                )
            else:
                add(
                    t,
                    f"force-admitted through backpressure after "
                    f"{record['deferrals']} deferrals "
                    f"(saturated: {subsystems})",
                )
        elif kind == "fault.inject":
            add(
                t,
                f"fault injected: {record['channel']}"
                + (
                    f" on {record['activity']!r}"
                    if record.get("activity")
                    else ""
                ),
            )
    if not seen:
        raise ValueError(f"trace contains no events for pid {pid}")
    header = [
        f"P{pid} — causal account ({len(lines)} events)",
        "=" * 60,
    ]
    footer = [
        "-" * 60,
        f"  deferments: {defers}   time parked: {blocked_total:g} vt   "
        f"cascade aborts suffered: {cascades_suffered}   "
        f"resubmissions: {resubmissions}",
        f"  final outcome: {outcome}",
    ]
    return "\n".join(header + lines + footer)
