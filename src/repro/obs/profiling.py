"""Phase-level wall-clock profiling of a scheduling run.

``repro profile`` (and ``benchmarks/test_profile.py``) answer the
question the aggregate lock-ops/sec number cannot: *where* does a run
spend its wall clock — granting locks, parking and waking deferred
requests, resolving deadlocks, or emitting trace events?

:class:`PhaseProfiler` attributes **exclusive** time to a small fixed
set of phases with a stack discipline: entering a phase attributes the
elapsed interval to whatever phase was running and pushes the new one;
exiting attributes to the exiting phase and pops.  Nested calls (a
commit retried from inside the wake-up drain, say) therefore never
double-count — every wall-clock nanosecond between :meth:`begin` and
:meth:`end` lands in exactly one phase, and the shares sum to 1.0 by
construction.  Time not spent inside any instrumented call is the
``other`` phase (activity execution simulation, engine dispatch, ...).

:func:`instrument` attaches the profiler to a built manager by wrapping
*instance* attributes only — the classes stay untouched, un-instrumented
runs pay nothing, and the wrapped calls add only two clock reads each,
so the measured schedule is byte-identical to an unprofiled run (the
profiling tests pin this).

Thread-safety: the stack discipline assumes single-threaded execution.
Under the parallel manager the coordinator-side hooks remain valid, but
the worker-side batch probes are left un-instrumented (their time shows
up as ``other``); profile with ``workers=1`` for full attribution.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.errors import ReproError

#: Phase keys, in reporting order.
PHASES = ("grant", "park", "wake", "deadlock", "trace_emit", "other")


class PhaseProfiler:
    """Exclusive wall-clock attribution over the fixed phase set."""

    __slots__ = ("seconds", "calls", "_stack", "_mark", "_running")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.calls: dict[str, int] = {phase: 0 for phase in PHASES}
        self._stack: list[str] = []
        self._mark = 0.0
        self._running = False

    # ------------------------------------------------------------------
    # the stack discipline
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start the run bracket (everything outside calls = other)."""
        if self._running:
            raise ReproError("profiler already running")
        self._running = True
        self._stack = ["other"]
        self._mark = time.perf_counter()

    def end(self) -> None:
        """Close the run bracket."""
        if not self._running:
            raise ReproError("profiler not running")
        if len(self._stack) != 1:  # pragma: no cover - defensive
            raise ReproError(
                f"unbalanced profiler stack at end: {self._stack}"
            )
        self._attribute()
        self._running = False

    def _attribute(self) -> None:
        now = time.perf_counter()
        self.seconds[self._stack[-1]] += now - self._mark
        self._mark = now

    def enter(self, phase: str) -> None:
        # Hooks may fire outside the run bracket (submission-time trace
        # emits); only bracketed time is attributed.
        if not self._running:
            return
        self._attribute()
        self._stack.append(phase)
        self.calls[phase] += 1

    def exit(self) -> None:
        if not self._running:
            return
        self._attribute()
        self._stack.pop()

    # ------------------------------------------------------------------
    # instrumentation helper
    # ------------------------------------------------------------------
    def wrap(self, phase: str, func: Callable) -> Callable:
        """A callable attributing its exclusive run time to ``phase``."""

        def wrapped(*args, **kwargs):
            self.enter(phase)
            try:
                return func(*args, **kwargs)
            finally:
                self.exit()

        return wrapped

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> dict:
        """Per-phase seconds / share / call counts (JSON-ready).

        Shares are fractions of the bracketed wall clock and sum to 1.0
        up to float rounding — ``benchmarks/test_profile.py`` and the CI
        profile-smoke step assert it.
        """
        total = self.total_seconds
        phases = {
            phase: {
                "seconds": self.seconds[phase],
                "share": (self.seconds[phase] / total) if total else 0.0,
                "calls": self.calls[phase],
            }
            for phase in PHASES
        }
        return {"total_s": total, "phases": phases}


class _TracerProxy:
    """Delegating tracer wrapper that meters :meth:`emit`.

    Wraps one tracer *instance reference* (never the shared
    ``NULL_TRACER`` behaviourally — a disabled tracer's guard sites
    read ``enabled`` off the proxy and skip the emit entirely, so the
    proxy adds nothing to an untraced run).
    """

    __slots__ = ("_tracer", "_profiler", "enabled")

    def __init__(self, tracer, profiler: PhaseProfiler) -> None:
        self._tracer = tracer
        self._profiler = profiler
        self.enabled = tracer.enabled

    def emit(self, event) -> None:
        profiler = self._profiler
        profiler.enter("trace_emit")
        try:
            self._tracer.emit(event)
        finally:
            profiler.exit()

    def __getattr__(self, name):
        return getattr(self._tracer, name)


#: (owner attribute path, method name, phase) instrumentation map.
_PROTOCOL_HOOKS = (
    ("classify_regular", "grant"),
    ("request_activity_lock", "grant"),
    ("request_compensation_lock", "grant"),
    ("try_commit", "grant"),
    ("grant_c_direct", "grant"),
)
_MANAGER_HOOKS = (
    ("_park", "park"),
    ("_unpark", "park"),
    ("_retry_parked", "wake"),
    ("_resolve_wait_cycles", "deadlock"),
)


def instrument(manager, profiler: PhaseProfiler):
    """Attach ``profiler`` to a built manager (instance-level only)."""
    protocol = manager.protocol
    for name, phase in _PROTOCOL_HOOKS:
        setattr(protocol, name, profiler.wrap(phase, getattr(protocol, name)))
    # Worker threads run the batch probes concurrently under the
    # parallel manager; the stack discipline is single-threaded, so
    # only meter them on a sequential run.
    if getattr(manager.config, "workers", 1) <= 1:
        protocol.probe_c_grants = profiler.wrap(
            "grant", protocol.probe_c_grants
        )
    for name, phase in _MANAGER_HOOKS:
        setattr(manager, name, profiler.wrap(phase, getattr(manager, name)))
    proxy = _TracerProxy(manager.tracer, profiler)
    manager.tracer = proxy
    protocol.tracer = proxy
    return manager


def run_profiled_workload(
    workload,
    protocol_name: str = "process-locking",
    seed: int = 0,
    config=None,
    arrivals=None,
    tracer=None,
):
    """:func:`repro.sim.runner.run_workload` with phase attribution.

    Returns ``(RunResult, PhaseProfiler)``; the profiler brackets
    ``manager.run()`` only (submission setup is not interesting), and
    the produced schedule is byte-identical to the unprofiled run.
    """
    from repro.errors import SchedulerError
    from repro.scheduler.manager import make_manager
    from repro.sim.runner import make_protocol

    if arrivals is not None and len(arrivals) != len(workload.programs):
        raise SchedulerError(
            f"{len(arrivals)} arrival times for "
            f"{len(workload.programs)} programs"
        )
    protocol = make_protocol(protocol_name, workload)
    manager = make_manager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
        tracer=tracer,
    )
    profiler = PhaseProfiler()
    instrument(manager, profiler)
    for index, program in enumerate(workload.programs):
        at = (
            arrivals[index]
            if arrivals is not None
            else workload.arrival_time(index)
        )
        manager.submit(program, at=at)
    profiler.begin()
    try:
        result = manager.run()
    finally:
        profiler.end()
    return result, profiler
