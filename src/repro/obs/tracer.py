"""The guard-checked tracer and its disabled no-op twin.

Every instrumented layer holds a tracer reference and guards each emit
site with ``if tracer.enabled:`` — with the default
:data:`NULL_TRACER`, a run pays exactly one attribute read per site, no
event objects are ever constructed, and the schedule is byte-identical
to an uninstrumented run (asserted by the zero-overhead tests and the
``benchmarks/test_obs_overhead.py`` guard).

An enabled :class:`Tracer` stamps each event with the virtual time of
the manager it is bound to plus a global sequence number, feeds the
series bank (histogram bumps from the event stream, gauge samples from
the bound sampler), and keeps everything in memory until an exporter
(:mod:`repro.obs.export`) writes it out.

Crash/recovery note: each manager incarnation restarts its virtual
clock at zero, so the fault injector advances :attr:`Tracer.offset` by
the crashed incarnation's final time — stamped times stay monotone
across the whole logical run.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.events import (
    ActivityClassified,
    CascadeRequested,
    LockDeferred,
    event_payload,
)
from repro.obs.series import SeriesBank


@dataclass(frozen=True, slots=True)
class Stamped:
    """One emitted event with its virtual-time/sequence stamp."""

    seq: int
    t: float
    event: object

    def to_record(self) -> dict:
        """Flat dictionary form (what the JSONL log stores per line)."""
        record = {"seq": self.seq, "t": self.t, "kind": self.event.kind}
        record.update(event_payload(self.event))
        return record


class NullTracer:
    """Disabled tracer: every hook is a no-op, ``enabled`` is False.

    Emit sites must guard on :attr:`enabled` before *constructing*
    events; the methods here exist only as a defensive backstop so an
    unguarded call cannot crash a run.
    """

    enabled = False

    def emit(self, event) -> None:  # pragma: no cover - guarded away
        pass

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def bind_sampler(
        self, sampler: Callable[[], dict[str, float]]
    ) -> None:
        pass


#: The process-wide disabled tracer; shared safely because it is
#: stateless.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects stamped events and series for one (logical) run."""

    enabled = True

    def __init__(self, collect_series: bool = True) -> None:
        self.stamped: list[Stamped] = []
        self.series: SeriesBank | None = (
            SeriesBank() if collect_series else None
        )
        #: Added to every clock reading; bumped across manager
        #: incarnations by the fault injector.
        self.offset = 0.0
        self._clock: Callable[[], float] = lambda: 0.0
        self._sampler: Callable[[], dict[str, float]] | None = None
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use ``clock()`` (the manager's virtual clock) for stamping."""
        self._clock = clock

    def bind_sampler(
        self, sampler: Callable[[], dict[str, float]]
    ) -> None:
        """Poll ``sampler()`` for gauge values on every emit."""
        self._sampler = sampler

    @property
    def now(self) -> float:
        return self._clock() + self.offset

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def emit(self, event) -> None:
        """Stamp and store one event; update the series bank."""
        t = self.now
        self.stamped.append(Stamped(seq=next(self._seq), t=t, event=event))
        bank = self.series
        if bank is None:
            return
        if isinstance(event, LockDeferred):
            bank.bump("defer_reasons", event.reason)
            if event.activity is not None:
                bank.bump("conflicts_by_type", event.activity)
        elif isinstance(event, CascadeRequested):
            if event.activity is not None:
                bank.bump(
                    "conflicts_by_type", event.activity, len(event.victims)
                )
            bank.bump("cascades_by_type", event.activity or "<commit>")
        elif isinstance(event, ActivityClassified):
            bank.gauge(f"wcc/P{event.pid}", t, event.wcc)
        if self._sampler is not None:
            for name, value in self._sampler().items():
                bank.gauge(name, t, value)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """All stamped events as flat record dictionaries."""
        return [stamp.to_record() for stamp in self.stamped]

    def __len__(self) -> int:
        return len(self.stamped)
