"""Decision-level tracing and virtual-time telemetry.

The ``repro.obs`` package makes individual scheduling decisions — the
ordered-shared grants, deferments, conversions, cascades, and
timestamp-ordered resubmissions of the process-locking protocol —
observable, instead of only the end-of-run aggregates of
:mod:`repro.sim.metrics`:

* :mod:`repro.obs.events` — the typed event vocabulary (grants with
  positions, defers with the blocking holders and the rule that fired,
  cascades with the timestamp comparison, lifecycle spans, wait-for
  edge inserts/deletes, fault injections);
* :mod:`repro.obs.tracer` — the guard-checked :class:`Tracer` and the
  disabled :data:`NULL_TRACER` singleton that every emit site consults
  (disabled runs stay trace-equivalent and benchmark-neutral);
* :mod:`repro.obs.series` — virtual-time series sampled on manager
  events (parked gauge, lock-table depth, per-process Wcc, conflict
  histograms);
* :mod:`repro.obs.export` — JSONL event logs, Chrome
  trace-event/Perfetto JSON, and wait-for-graph DOT snapshots;
* :mod:`repro.obs.explain` — replay a JSONL trace into a
  human-readable causal account of one process's blocks, aborts, and
  resubmissions (``repro explain``).
"""

from repro.obs.explain import deferred_pids, explain_process
from repro.obs.export import (
    export_all,
    perfetto_trace,
    read_jsonl,
    wait_for_dot,
    write_jsonl,
)
from repro.obs.series import SeriesBank
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SeriesBank",
    "Tracer",
    "deferred_pids",
    "explain_process",
    "export_all",
    "perfetto_trace",
    "read_jsonl",
    "wait_for_dot",
    "write_jsonl",
]
