"""Decision-level tracing and virtual-time telemetry.

The ``repro.obs`` package makes individual scheduling decisions — the
ordered-shared grants, deferments, conversions, cascades, and
timestamp-ordered resubmissions of the process-locking protocol —
observable, instead of only the end-of-run aggregates of
:mod:`repro.sim.metrics`:

* :mod:`repro.obs.events` — the typed event vocabulary (grants with
  positions, defers with the blocking holders and the rule that fired,
  cascades with the timestamp comparison, lifecycle spans, wait-for
  edge inserts/deletes, fault injections);
* :mod:`repro.obs.tracer` — the guard-checked :class:`Tracer` and the
  disabled :data:`NULL_TRACER` singleton that every emit site consults
  (disabled runs stay trace-equivalent and benchmark-neutral);
* :mod:`repro.obs.series` — virtual-time series sampled on manager
  events (parked gauge, lock-table depth, per-process Wcc, conflict
  histograms);
* :mod:`repro.obs.export` — JSONL event logs, Chrome
  trace-event/Perfetto JSON, and wait-for-graph DOT snapshots;
* :mod:`repro.obs.explain` — replay a JSONL trace into a
  human-readable causal account of one process's blocks, aborts, and
  resubmissions (``repro explain``);
* :mod:`repro.obs.metrics` — the deterministic metrics plane: a
  dependency-free registry of counters/gauges/histograms with
  Prometheus text exposition, the :class:`EventMetrics` feeder mapping
  the event stream onto it, and the :class:`MetricsTracer` tee;
* :mod:`repro.obs.flight` — a bounded ring of the last N events,
  dumped as JSONL on drain/crash so any incident is explainable;
* :mod:`repro.obs.profiling` — phase-level wall-clock attribution
  (grant / park / wake / deadlock / trace-emit shares) behind
  ``repro profile`` and ``benchmarks/test_profile.py``.
"""

from repro.obs.explain import deferred_pids, explain_process
from repro.obs.export import (
    events_from_records,
    export_all,
    perfetto_trace,
    read_jsonl,
    record_to_event,
    wait_for_dot,
    write_jsonl,
)
from repro.obs.flight import FlightRecorder
from repro.obs.profiling import (
    PhaseProfiler,
    instrument,
    run_profiled_workload,
)
from repro.obs.metrics import (
    EventMetrics,
    MetricsRegistry,
    MetricsTracer,
    histogram_quantile,
    parse_prometheus,
    replay_metrics,
)
from repro.obs.series import SeriesBank
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "EventMetrics",
    "FlightRecorder",
    "MetricsRegistry",
    "MetricsTracer",
    "NULL_TRACER",
    "NullTracer",
    "PhaseProfiler",
    "SeriesBank",
    "Tracer",
    "deferred_pids",
    "events_from_records",
    "explain_process",
    "export_all",
    "histogram_quantile",
    "instrument",
    "parse_prometheus",
    "perfetto_trace",
    "read_jsonl",
    "record_to_event",
    "replay_metrics",
    "run_profiled_workload",
    "wait_for_dot",
    "write_jsonl",
]
