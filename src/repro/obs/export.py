"""Trace exporters: JSONL event log, Perfetto JSON, wait-for DOT.

All exporters operate on the flat record dictionaries produced by
:meth:`repro.obs.tracer.Tracer.records` (or read back from a JSONL log),
so post-processing never needs the live simulation objects.

Perfetto / Chrome trace-event format
------------------------------------
:func:`perfetto_trace` emits the JSON object form
(``{"traceEvents": [...]}``) understood by https://ui.perfetto.dev and
``chrome://tracing``:

* one track group per process (``pid`` = process id, track name
  ``P<pid>``), one thread row per incarnation;
* complete spans (``ph: "X"``) for activity executions, paired
  start→commit/fail/cancel by activity uid;
* instant events (``ph: "i"``) for defers, cascades, conversions,
  aborts, commits, resubmissions, deadlock victims, and fault
  injections;
* counter tracks (``ph: "C"``) from the series gauges.

Virtual time has no wall unit; one virtual time unit is exported as one
millisecond (``ts`` is in microseconds), which keeps sub-unit activity
costs visible at Perfetto's default zoom.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields
from pathlib import Path

from repro.obs.events import EVENT_TYPES, Holder
from repro.obs.series import SeriesBank

#: Exported µs per virtual time unit (1 vt unit == 1 ms on screen).
TS_SCALE = 1000.0

#: Record kinds rendered as Perfetto instants, with display names.
_INSTANT_KINDS = {
    "lock.defer": lambda r: f"defer:{r['reason']}",
    "lock.cascade": lambda r: f"cascade:{r.get('activity') or 'commit'}",
    "lock.self-abort": lambda r: f"self-abort:{r['reason']}",
    "lock.convert": lambda r: f"convert:{r['type_name']}",
    "process.abort-begin": lambda r: f"abort:{r['cause']}",
    "process.commit": lambda r: "commit",
    "process.resubmit": lambda r: f"resubmit#{r['incarnation']}",
    "deadlock.victim": lambda r: "deadlock-victim",
    "deadlock.forced": lambda r: f"forced:{r['request']}",
    "fault.inject": lambda r: f"fault:{r['channel']}",
}

#: Span-terminating kinds, keyed off the start's activity uid.
_SPAN_ENDS = {"activity.commit", "activity.fail", "activity.cancel"}

#: Synthetic Perfetto pid hosting the per-shard-worker thread tracks
#: (parallel runs only).  Far above any real process id, so the track
#: group can never collide with a process track.
_WORKER_TRACK_PID = 1_000_000_000


#: String stand-ins for non-finite floats.  Strict JSON has no
#: ``Infinity``/``NaN`` tokens (Perfetto's importer rejects them), yet a
#: committed pivot legitimately drives ``Wcc`` to ``inf``.
_NONFINITE = {"Infinity": math.inf, "-Infinity": -math.inf, "NaN": math.nan}


def _jsonable(value):
    """Recursively replace non-finite floats with their string names."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _restore(value):
    """Inverse of :func:`_jsonable` (applied on JSONL read-back)."""
    if isinstance(value, str) and value in _NONFINITE:
        return _NONFINITE[value]
    if isinstance(value, dict):
        return {key: _restore(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore(item) for item in value]
    return value


def write_jsonl(records: list[dict], path: str | Path) -> Path:
    """Write one strict-JSON record per line; returns the path."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    _jsonable(record), sort_keys=True, allow_nan=False
                )
                + "\n"
            )
    return target


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL event log back into record dictionaries."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(_restore(json.loads(line)))
    return records


# ----------------------------------------------------------------------
# record -> event restore table
# ----------------------------------------------------------------------
#: Fields holding tuples of :class:`Holder` (JSON lists of dicts).
_HOLDER_TUPLE_FIELDS = {
    ("lock.defer", "blockers"),
    ("lock.cascade", "victims"),
}

#: Fields holding flat tuples of scalars (JSON lists).
_SCALAR_TUPLE_FIELDS = {
    ("wait.edge", "blockers"),
    ("deadlock.victim", "cycle"),
    ("deadlock.forced", "cycle"),
    ("resilience.admission", "subsystems"),
    ("resilience.backpressure", "subsystems"),
    ("resilience.degrade", "open_subsystems"),
}


def record_to_event(record: dict):
    """Rebuild the typed event dataclass from one flat record.

    Inverse of :meth:`repro.obs.tracer.Stamped.to_record` for the
    payload part: JSON round-trips turn tuples into lists and
    ``Holder`` entries into dicts, so this restores every tuple-typed
    field per the tables above.  Covers every class in
    :data:`repro.obs.events.EVENT_TYPES`; raises :class:`ValueError`
    on an unknown kind and :class:`TypeError` when required payload
    fields are missing.
    """
    kind = record["kind"]
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    kwargs = {}
    for field_info in fields(cls):
        name = field_info.name
        if name not in record:
            continue  # absent optional field: let the default fill in
        value = record[name]
        if (kind, name) in _HOLDER_TUPLE_FIELDS:
            value = tuple(
                item if isinstance(item, Holder) else Holder(**item)
                for item in value
            )
        elif (kind, name) in _SCALAR_TUPLE_FIELDS:
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


def events_from_records(records: list[dict]) -> list:
    """Restore a whole record stream (drops no stamps — pair with the
    ``seq``/``t`` keys of the originals as needed)."""
    return [record_to_event(record) for record in records]


def _holder_args(record: dict) -> dict:
    """Perfetto ``args`` payload for a decision record."""
    args = {
        key: value
        for key, value in record.items()
        if key not in ("seq", "t", "kind") and value is not None
    }
    return args


def perfetto_trace(
    records: list[dict], series: SeriesBank | dict | None = None
) -> dict:
    """Convert trace records (+ optional series) to Perfetto JSON."""
    trace_events: list[dict] = []
    pids_seen: set[int] = set()
    workers_seen: set[int] = set()
    open_spans: dict[int, dict] = {}
    max_t = 0.0

    def note_pid(pid) -> None:
        if pid is None or pid in pids_seen:
            return
        pids_seen.add(pid)
        trace_events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"P{pid}"},
            }
        )

    def note_worker(worker: int) -> None:
        if worker in workers_seen:
            return
        if not workers_seen:
            trace_events.append(
                {
                    "ph": "M",
                    "pid": _WORKER_TRACK_PID,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": "shard workers"},
                }
            )
        workers_seen.add(worker)
        trace_events.append(
            {
                "ph": "M",
                "pid": _WORKER_TRACK_PID,
                "tid": worker,
                "name": "thread_name",
                "args": {"name": f"worker-{worker}"},
            }
        )

    def close_span(start: dict, end_t: float, outcome: str) -> None:
        span = {
            "ph": "X",
            "pid": start["pid"],
            "tid": start.get("incarnation", 0),
            "name": start["activity"],
            "cat": (
                "compensation"
                if start.get("compensation")
                else "activity"
            ),
            "ts": start["t"] * TS_SCALE,
            "dur": max(end_t - start["t"], 0.0) * TS_SCALE,
            "args": {"uid": start["uid"], "outcome": outcome},
        }
        trace_events.append(span)
        worker = start.get("worker")
        if worker is not None:
            # Mirror the span onto the owning shard worker's thread
            # track so parallel runs show real per-worker concurrency.
            note_worker(worker)
            mirrored = dict(span)
            mirrored["pid"] = _WORKER_TRACK_PID
            mirrored["tid"] = worker
            mirrored["args"] = dict(
                span["args"], pid=start["pid"], worker=worker
            )
            trace_events.append(mirrored)

    for record in records:
        t = record["t"]
        max_t = max(max_t, t)
        kind = record["kind"]
        pid = record.get("pid")
        note_pid(pid)
        if kind == "activity.start":
            open_spans[record["uid"]] = record
        elif kind in _SPAN_ENDS:
            start = open_spans.pop(record["uid"], None)
            if start is None:
                continue
            close_span(start, t, kind)
        elif kind in _INSTANT_KINDS:
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": pid if pid is not None else 0,
                    "tid": record.get("incarnation", 0),
                    "name": _INSTANT_KINDS[kind](record),
                    "cat": kind,
                    "ts": t * TS_SCALE,
                    "args": _holder_args(record),
                }
            )
    # Spans still open when the trace ended (e.g. the run was cut off).
    for start in open_spans.values():
        close_span(start, max_t, "open")
    for name, points in _series_gauges(series).items():
        for t, value in points:
            if not math.isfinite(value):
                continue  # counter tracks must stay numeric
            trace_events.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "name": name,
                    "ts": t * TS_SCALE,
                    "args": {name.rsplit("/", 1)[-1]: value},
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "virtual_time_unit_us": TS_SCALE,
        },
    }


def _series_gauges(
    series: SeriesBank | dict | None,
) -> dict[str, list]:
    if series is None:
        return {}
    if isinstance(series, SeriesBank):
        series = series.to_dict()
    return series.get("gauges", {})


def wait_for_dot(records: list[dict], at: float | None = None) -> str:
    """DOT snapshot of the wait-for graph at virtual time ``at``.

    Replays the ``wait.edge`` insert/delete stream; with ``at`` omitted
    the snapshot is taken at the moment the graph held the most edges —
    the most interesting picture of a run's contention.
    """
    live: dict[int, dict] = {}
    best: dict[int, dict] = {}
    best_t = 0.0
    best_size = -1
    for record in records:
        if record["kind"] != "wait.edge":
            continue
        if at is not None and record["t"] > at:
            break
        if record["op"] == "insert":
            live[record["seq"]] = record
        else:
            live.pop(record["seq"], None)
        size = sum(len(r["blockers"]) for r in live.values())
        if size > best_size:
            best_size = size
            best = dict(live)
            best_t = record["t"]
    snapshot = live if at is not None else best
    when = at if at is not None else best_t
    lines = [
        "digraph waitfor {",
        "  rankdir=LR;",
        f'  label="wait-for graph @ vt {when:g}";',
        "  node [shape=circle];",
    ]
    nodes: set[int] = set()
    for record in snapshot.values():
        nodes.add(record["waiter"])
        nodes.update(record["blockers"])
    for pid in sorted(nodes):
        lines.append(f'  p{pid} [label="P{pid}"];')
    for record in sorted(snapshot.values(), key=lambda r: r["seq"]):
        # Annotate each edge with the lock shard (subsystem) the parked
        # request contends on; commit requests span shards and carry
        # none.
        shard = record.get("shard")
        label = (
            f"{record['reason']}\\n@{shard}"
            if shard
            else record["reason"]
        )
        for blocker in record["blockers"]:
            lines.append(
                f'  p{record["waiter"]} -> p{blocker} '
                f'[label="{label}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def export_all(tracer, out_dir: str | Path) -> dict[str, Path]:
    """Write every export of one traced run into ``out_dir``.

    Produces ``events.jsonl``, ``trace.perfetto.json``,
    ``waitfor.dot``, and (when the tracer collected series)
    ``series.json``; returns the written paths keyed by artifact name.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    records = tracer.records()
    paths = {
        "events": write_jsonl(records, out / "events.jsonl"),
    }
    perfetto = perfetto_trace(records, tracer.series)
    perfetto_path = out / "trace.perfetto.json"
    perfetto_path.write_text(
        json.dumps(_jsonable(perfetto), allow_nan=False) + "\n",
        encoding="utf-8",
    )
    paths["perfetto"] = perfetto_path
    dot_path = out / "waitfor.dot"
    dot_path.write_text(wait_for_dot(records), encoding="utf-8")
    paths["waitfor"] = dot_path
    if tracer.series is not None:
        series_path = out / "series.json"
        series_path.write_text(
            json.dumps(
                _jsonable(tracer.series.to_dict()),
                indent=2,
                allow_nan=False,
            )
            + "\n",
            encoding="utf-8",
        )
        paths["series"] = series_path
    return paths
