"""Deterministic metrics plane layered on the typed event stream.

Three pieces live here:

* :class:`MetricsRegistry` — a tiny, dependency-free registry of
  counters, gauges, and fixed-bucket histograms with stable label sets.
  The same event stream always produces the same registry contents and
  the same Prometheus text exposition byte-for-byte (families render in
  declaration order, children in sorted label order).
* :class:`EventMetrics` — the domain feeder: it maps every
  :mod:`repro.obs.events` dataclass onto metric families (process
  outcomes, lock grants/defers by rule, virtual-time lock-wait and park
  histograms, retries per activity, breaker state gauges, …) and keeps
  the small amount of pairing state the derivations need (park inserts
  awaiting their delete, defers awaiting their grant, pids whose
  terminal abort was really a client cancel).
* :class:`MetricsTracer` — a tee tracer: it feeds an
  :class:`EventMetrics`, optionally appends to a
  :class:`~repro.obs.flight.FlightRecorder`, and forwards the raw event
  to any number of sink tracers (:class:`~repro.obs.tracer.Tracer`,
  :class:`~repro.server.bridge.BusTracer`), which stamp exactly as they
  would without the tee.  When metrics are disabled nothing here is
  constructed at all — emit sites still guard on ``tracer.enabled`` and
  the zero-overhead byte-identity guarantee of :data:`NULL_TRACER`
  holds unchanged.

Performance note: like :class:`~repro.obs.tracer.Tracer`, nothing on
the emit path flattens events through ``event_payload`` — the feeder
reads attributes directly and the flight recorder stores the event
object, flattening lazily at dump time.  The metrics-over-tracer factor
is pinned by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections.abc import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "EventMetrics",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsTracer",
    "RETRY_BUCKETS",
    "VT_WAIT_BUCKETS",
    "histogram_quantile",
    "parse_prometheus",
    "replay_metrics",
]

#: Virtual-time buckets for lock-wait and park-duration histograms;
#: activity durations in the simulator are O(1)-O(10) virtual units.
VT_WAIT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
)

#: Retries-per-activity buckets (a count, not a duration).
RETRY_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0)

#: Wall-clock submit-to-commit buckets (seconds) for the service.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Breaker states as gauge values (ordering matches escalation).
BREAKER_STATE_VALUES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}

#: Cached verdict for sampler keys no gauge family consumes.
_IGNORED_SAMPLE = object()


def _fmt(value: float) -> str:
    """Prometheus sample value formatting (integers without the .0)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    as_int = int(value)
    if as_int == value:
        return str(as_int)
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Family:
    """Shared plumbing for one named metric family."""

    type_name = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._lock = lock
        self._children: dict[tuple, object] = {}

    def _check_labels(self, labels: tuple) -> tuple:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {labels!r}"
            )
        return tuple(str(v) for v in labels)

    def _sorted_children(self) -> list[tuple[tuple, object]]:
        return sorted(self._children.items())


class Counter(_Family):
    """Monotone counter family."""

    type_name = "counter"

    def inc(self, labels: tuple = (), amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        labels = self._check_labels(labels)
        with self._lock:
            self._children[labels] = self._children.get(labels, 0) + amount

    def value(self, labels: tuple = ()) -> float:
        labels = self._check_labels(labels)
        with self._lock:
            return self._children.get(labels, 0)

    def total(self) -> float:
        """Sum over every child (handy for reconciliation tests)."""
        with self._lock:
            return sum(self._children.values())


class Gauge(_Family):
    """Last-write-wins gauge family."""

    type_name = "gauge"

    def set(self, value: float, labels: tuple = ()) -> None:
        labels = self._check_labels(labels)
        with self._lock:
            self._children[labels] = value

    def value(self, labels: tuple = ()) -> float:
        labels = self._check_labels(labels)
        with self._lock:
            return self._children.get(labels, 0.0)


class _HistChild:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # last slot = +Inf overflow
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-bucket histogram family (cumulative at render time)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help_text, label_names, lock)
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"{name}: buckets must strictly increase")
        self.buckets = ordered

    def observe(self, value: float, labels: tuple = ()) -> None:
        labels = self._check_labels(labels)
        with self._lock:
            child = self._children.get(labels)
            if child is None:
                child = _HistChild(len(self.buckets))
                self._children[labels] = child
            slot = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = i
                    break
            child.counts[slot] += 1
            child.total += value
            child.count += 1

    def cumulative(self, labels: tuple = ()) -> list[tuple[float, int]]:
        """``[(le, cumulative_count), ...]`` ending with ``+Inf``."""
        labels = self._check_labels(labels)
        with self._lock:
            child = self._children.get(labels)
            counts = (
                list(child.counts)
                if child is not None
                else [0] * (len(self.buckets) + 1)
            )
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out


class MetricsRegistry:
    """Declare-or-get registry with deterministic exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def _declare(self, cls, name: str, help_text: str, labels, **kwargs):
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or (
                    family.label_names != label_names
                ):
                    raise ValueError(
                        f"metric {name!r} re-declared with a different "
                        "type or label set"
                    )
                return family
            family = cls(name, help_text, label_names, self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Iterable[str] = (),
        buckets: Sequence[float] = VT_WAIT_BUCKETS,
    ) -> Histogram:
        return self._declare(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dump; same content as the text exposition."""
        families = []
        with self._lock:
            ordered = list(self._families.values())
        for family in ordered:
            entry: dict = {
                "name": family.name,
                "type": family.type_name,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": [],
            }
            if isinstance(family, Histogram):
                with self._lock:
                    children = family._sorted_children()
                for values, child in children:
                    running = 0
                    buckets = []
                    for bound, n in zip(family.buckets, child.counts):
                        running += n
                        buckets.append([_fmt(bound), running])
                    buckets.append(["+Inf", running + child.counts[-1]])
                    entry["samples"].append(
                        {
                            "labels": dict(
                                zip(family.label_names, values)
                            ),
                            "buckets": buckets,
                            "sum": child.total,
                            "count": child.count,
                        }
                    )
            else:
                with self._lock:
                    children = family._sorted_children()
                for values, value in children:
                    entry["samples"].append(
                        {
                            "labels": dict(
                                zip(family.label_names, values)
                            ),
                            "value": value,
                        }
                    )
            families.append(entry)
        return {"families": families}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            ordered = list(self._families.values())
        for family in ordered:
            lines.append(
                f"# HELP {family.name} {_escape_help(family.help)}"
            )
            lines.append(f"# TYPE {family.name} {family.type_name}")
            if isinstance(family, Histogram):
                with self._lock:
                    children = family._sorted_children()
                for values, child in children:
                    running = 0
                    names = family.label_names + ("le",)
                    for bound, n in zip(family.buckets, child.counts):
                        running += n
                        labels = _label_str(
                            names, tuple(values) + (_fmt(bound),)
                        )
                        lines.append(
                            f"{family.name}_bucket{labels} {running}"
                        )
                    labels = _label_str(
                        names, tuple(values) + ("+Inf",)
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} "
                        f"{running + child.counts[-1]}"
                    )
                    plain = _label_str(family.label_names, values)
                    lines.append(
                        f"{family.name}_sum{plain} {_fmt(child.total)}"
                    )
                    lines.append(
                        f"{family.name}_count{plain} {child.count}"
                    )
            else:
                with self._lock:
                    children = family._sorted_children()
                for values, value in children:
                    labels = _label_str(family.label_names, values)
                    lines.append(
                        f"{family.name}{labels} {_fmt(value)}"
                    )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# exposition parsing (in-tree, used by CI smoke and `repro top`)
# ----------------------------------------------------------------------
def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {text[eq:]!r}")
        j = eq + 2
        out: list[str] = []
        while text[j] != '"':
            ch = text[j]
            if ch == "\\":
                j += 1
                nxt = text[j]
                out.append({"n": "\n", "\\": "\\", '"': '"'}[nxt])
            else:
                out.append(ch)
            j += 1
        labels[name] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition into ``{family: {type, help, samples}}``.

    ``samples`` maps ``(sample_name, frozenset(labels.items()))`` to the
    float value.  Raises :class:`ValueError` on malformed lines, samples
    without a preceding ``# TYPE``, or sample names that do not belong
    to their family — enough validation for the CI smoke test without
    any external dependency.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_name = rest.partition(" ")
            if type_name not in {"counter", "gauge", "histogram"}:
                raise ValueError(
                    f"line {lineno}: unknown type {type_name!r}"
                )
            families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )["type"] = type_name
            current = name
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            brace = line.index("{")
            sample_name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1 : close])
            value_text = line[close + 1 :].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        if current is None or not sample_name.startswith(current):
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} outside its "
                "# TYPE block"
            )
        suffix = sample_name[len(current) :]
        family_type = families[current]["type"]
        if family_type == "histogram":
            if suffix not in {"_bucket", "_sum", "_count"}:
                raise ValueError(
                    f"line {lineno}: bad histogram suffix {suffix!r}"
                )
        elif suffix:
            raise ValueError(
                f"line {lineno}: unexpected suffix {suffix!r} on "
                f"{family_type} family {current!r}"
            )
        value = _parse_value(value_text)
        families[current]["samples"][
            (sample_name, frozenset(labels.items()))
        ] = value
    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has samples but no # TYPE")
    return families


def histogram_quantile(
    cumulative: Sequence[tuple[float, float]], q: float
) -> float:
    """PromQL-style quantile from ``[(le, cumulative_count), ...]``.

    Linear interpolation inside the winning bucket; the lowest bucket
    interpolates from zero.  Returns ``nan`` on an empty histogram.
    """
    if not cumulative:
        return math.nan
    total = cumulative[-1][1]
    if total <= 0:
        return math.nan
    rank = q * total
    prev_bound = 0.0
    prev_count = 0.0
    for bound, count in cumulative:
        if count >= rank:
            if bound == math.inf:
                return prev_bound
            if count == prev_count:
                return bound
            frac = (rank - prev_count) / (count - prev_count)
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_count = bound, count
    return prev_bound


# ----------------------------------------------------------------------
# domain feeder
# ----------------------------------------------------------------------
class EventMetrics:
    """Maps the typed event stream onto a :class:`MetricsRegistry`.

    The feeder is deliberately stats-compatible: its derived counters
    reconcile exactly with :class:`~repro.scheduler.manager.ManagerStats`
    (pinned by the property test in ``tests/test_obs/test_metrics.py``).
    The one subtle case is a client cancel of a *running* process: the
    manager emits ``process.cancel`` + ``process.abort-begin(cancel)``
    + a terminal ``process.abort`` but counts only ``cancellations`` —
    so the feeder remembers cancelling pids and files the terminal
    abort under ``outcome="cancelled"`` instead of double-counting it
    as an abort.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.events = r.counter(
            "repro_events_total", "Emitted trace events by kind.", ("kind",)
        )
        self.submitted = r.counter(
            "repro_process_submitted_total",
            "Processes submitted to the manager.",
        )
        self.initiated = r.counter(
            "repro_process_initiated_total",
            "Processes past admission with a BOT timestamp drawn.",
        )
        self.outcomes = r.counter(
            "repro_process_outcomes_total",
            "Terminal process outcomes (committed/aborted/cancelled).",
            ("outcome",),
        )
        self.aborts = r.counter(
            "repro_process_aborts_total",
            "Abort executions begun, by cause "
            "(cascade/deadlock/self/intrinsic/subprocess/cancel).",
            ("cause",),
        )
        self.resubmitted = r.counter(
            "repro_process_resubmitted_total",
            "Cascade victims restarted with their original timestamp.",
        )
        self.lock_grants = r.counter(
            "repro_lock_grants_total",
            "Lock grants by request class.",
            ("request",),
        )
        self.lock_defers = r.counter(
            "repro_lock_defers_total",
            "Lock defers by the paper rule that fired.",
            ("rule",),
        )
        self.self_aborts = r.counter(
            "repro_lock_self_aborts_total",
            "Requester-abort decisions (baseline protocols), by rule.",
            ("rule",),
        )
        self.cascades = r.counter(
            "repro_lock_cascades_total",
            "Cascade requests issued by timestamp order.",
        )
        self.cascade_victims = r.counter(
            "repro_cascade_victims_total",
            "Holders sacrificed across all cascade requests.",
        )
        self.conversions = r.counter(
            "repro_lock_conversions_total",
            "Comp-to-Piv lock conversions.",
        )
        self.classified = r.counter(
            "repro_wcc_classified_total",
            "Figure-1 treatment decisions by granted mode.",
            ("mode",),
        )
        self.activities = r.counter(
            "repro_activities_total",
            "Activity executions by outcome "
            "(started/committed/failed/cancelled/compensated).",
            ("outcome",),
        )
        self.worker_dispatch = r.counter(
            "repro_worker_dispatch_total",
            "Activity starts by shard worker (label 'none' when "
            "sequential).",
            ("worker",),
        )
        self.retries = r.counter(
            "repro_activity_retries_total",
            "Activity retry attempts.",
        )
        self.compensations = r.counter(
            "repro_compensations_total",
            "Compensation activities committed during aborts.",
        )
        self.parks = r.counter(
            "repro_parks_total",
            "Parked (deferred) requests by lock shard.",
            ("shard",),
        )
        self.deadlock_victims = r.counter(
            "repro_deadlock_victims_total",
            "Processes aborted to break a wait-for cycle.",
        )
        self.deadlock_forced = r.counter(
            "repro_deadlock_forced_total",
            "Forced progress through unresolvable cycles (baselines).",
        )
        self.faults = r.counter(
            "repro_faults_total",
            "Fault-injector actions by channel.",
            ("channel",),
        )
        self.breaker_transitions = r.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state changes by subsystem and new state.",
            ("subsystem", "to_state"),
        )
        self.breaker_state = r.gauge(
            "repro_breaker_state",
            "Circuit-breaker state (0=closed, 1=half-open, 2=open).",
            ("subsystem",),
        )
        self.admission = r.counter(
            "repro_admission_total",
            "Admission-gate decisions (defer/readmit/force-admit).",
            ("op",),
        )
        self.backpressure = r.counter(
            "repro_backpressure_total",
            "Shard-queue backpressure decisions (defer/force-admit).",
            ("op",),
        )
        self.retry_budget = r.counter(
            "repro_retry_budget_exhausted_total",
            "Retry budgets exhausted, by subsystem.",
            ("subsystem",),
        )
        self.degraded = r.gauge(
            "repro_degraded",
            "1 while the adaptive Wcc* degradation cap is engaged.",
        )
        self.wcc_cap = r.gauge(
            "repro_wcc_cap",
            "Last Wcc* cap applied by the degradation controller.",
        )
        self.parked_gauge = r.gauge(
            "repro_parked", "Requests currently parked."
        )
        self.inflight_gauge = r.gauge(
            "repro_inflight", "Activities currently executing."
        )
        self.live_gauge = r.gauge(
            "repro_live_processes", "Processes currently live."
        )
        self.locks_gauge = r.gauge(
            "repro_locks_total", "Lock entries currently on the table."
        )
        self.locks_by_shard = r.gauge(
            "repro_locks_held",
            "Lock entries currently held, by shard.",
            ("shard",),
        )
        self.queue_depth = r.gauge(
            "repro_shard_queue_depth",
            "Open work (in-flight + parked) per lock shard.",
            ("shard",),
        )
        self.lock_wait = r.histogram(
            "repro_lock_wait_vt",
            "Virtual time from first defer to grant, by request class.",
            ("request",),
            buckets=VT_WAIT_BUCKETS,
        )
        self.park_duration = r.histogram(
            "repro_park_duration_vt",
            "Virtual time a parked request spent blocked, by shard.",
            ("shard",),
            buckets=VT_WAIT_BUCKETS,
        )
        self.retries_per_activity = r.histogram(
            "repro_retries_per_activity",
            "Retry attempts per completed activity execution.",
            buckets=RETRY_BUCKETS,
        )
        self.submit_to_commit = r.histogram(
            "repro_submit_to_commit_seconds",
            "Wall-clock submit-to-terminal latency (service only).",
            ("outcome",),
            buckets=LATENCY_BUCKETS,
        )
        # Pairing state for derived observations.
        self._gauge_targets: dict[str, tuple | object] = {}
        self._defer_since: dict[tuple, float] = {}
        self._park_since: dict[int, tuple[float, str]] = {}
        self._retry_counts: dict[int, int] = {}
        self._cancelling: set[int] = set()
        self._handlers: dict[str, Callable[[float, object], None]] = {
            "process.submit": self._on_submit,
            "process.init": self._on_init,
            "process.commit": self._on_commit,
            "process.abort-begin": self._on_abort_begin,
            "process.abort": self._on_abort,
            "process.cancel": self._on_cancel,
            "process.resubmit": self._on_resubmit,
            "lock.grant": self._on_grant,
            "lock.defer": self._on_defer,
            "lock.cascade": self._on_cascade,
            "lock.self-abort": self._on_self_abort,
            "lock.convert": self._on_convert,
            "wcc.classify": self._on_classify,
            "activity.start": self._on_activity_start,
            "activity.retry": self._on_activity_retry,
            "activity.commit": self._on_activity_commit,
            "activity.fail": self._on_activity_fail,
            "activity.cancel": self._on_activity_cancel,
            "wait.edge": self._on_wait_edge,
            "deadlock.victim": self._on_deadlock_victim,
            "deadlock.forced": self._on_deadlock_forced,
            "fault.inject": self._on_fault,
            "resilience.breaker": self._on_breaker,
            "resilience.admission": self._on_admission,
            "resilience.backpressure": self._on_backpressure,
            "resilience.degrade": self._on_degrade,
            "retry.budget_exhausted": self._on_retry_budget,
        }

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def observe(self, t: float, event) -> None:
        kind = event.kind
        self.events.inc((kind,))
        handler = self._handlers.get(kind)
        if handler is not None:
            handler(t, event)

    def sample_gauges(self, samples: dict[str, float]) -> None:
        """Consume one sampler poll (same dict the Tracer gauges get).

        Hot path (once per emit): the first poll resolves each sample
        key to a ``(child-map, label-key)`` write target; later polls
        write straight to the child under the registry lock.
        """
        targets = self._gauge_targets
        lock = self.registry._lock
        for name, value in samples.items():
            target = targets.get(name)
            if target is None:
                target = targets[name] = self._resolve_gauge(name)
            if target is _IGNORED_SAMPLE:
                continue
            children, key = target
            with lock:
                children[key] = value

    def _resolve_gauge(self, name: str):
        """Map one sampler key onto its gauge child slot (or ignore)."""
        if name == "parked":
            return self.parked_gauge._children, ()
        if name == "inflight":
            return self.inflight_gauge._children, ()
        if name == "live":
            return self.live_gauge._children, ()
        if name == "locks":
            return self.locks_gauge._children, ()
        if name.startswith("locks."):
            return self.locks_by_shard._children, (name[6:],)
        if name.startswith("queue."):
            return self.queue_depth._children, (name[6:],)
        return _IGNORED_SAMPLE

    def observe_latency(self, seconds: float, outcome: str) -> None:
        """Service hook: one wall-clock submit-to-terminal sample."""
        self.submit_to_commit.observe(seconds, (outcome,))

    # ------------------------------------------------------------------
    # per-kind handlers
    # ------------------------------------------------------------------
    def _on_submit(self, t, event) -> None:
        self.submitted.inc()

    def _on_init(self, t, event) -> None:
        self.initiated.inc()

    def _on_commit(self, t, event) -> None:
        self.outcomes.inc(("committed",))

    def _on_abort_begin(self, t, event) -> None:
        self.aborts.inc((event.cause,))

    def _on_abort(self, t, event) -> None:
        if event.resubmit:
            return
        if event.pid in self._cancelling:
            self._cancelling.discard(event.pid)
            return
        self.outcomes.inc(("aborted",))

    def _on_cancel(self, t, event) -> None:
        self.outcomes.inc(("cancelled",))
        if event.initiated:
            self._cancelling.add(event.pid)

    def _on_resubmit(self, t, event) -> None:
        self.resubmitted.inc()

    def _on_grant(self, t, event) -> None:
        self.lock_grants.inc((event.request,))
        key = (event.pid, event.uid, event.request)
        since = self._defer_since.pop(key, None)
        if since is not None:
            self.lock_wait.observe(t - since, (event.request,))

    def _on_defer(self, t, event) -> None:
        self.lock_defers.inc((event.rule,))
        self._defer_since.setdefault(
            (event.pid, event.uid, event.request), t
        )

    def _on_cascade(self, t, event) -> None:
        self.cascades.inc()
        self.cascade_victims.inc(amount=len(event.victims))

    def _on_self_abort(self, t, event) -> None:
        self.self_aborts.inc((event.rule,))

    def _on_convert(self, t, event) -> None:
        self.conversions.inc()

    def _on_classify(self, t, event) -> None:
        self.classified.inc((event.mode,))

    def _on_activity_start(self, t, event) -> None:
        self.activities.inc(("started",))
        worker = event.worker
        self.worker_dispatch.inc(
            ("none" if worker is None else str(worker),)
        )

    def _on_activity_retry(self, t, event) -> None:
        self.retries.inc()
        self._retry_counts[event.uid] = (
            self._retry_counts.get(event.uid, 0) + 1
        )

    def _on_activity_commit(self, t, event) -> None:
        if event.compensation:
            self.compensations.inc()
            self.activities.inc(("compensated",))
        else:
            self.activities.inc(("committed",))
        self.retries_per_activity.observe(
            self._retry_counts.pop(event.uid, 0)
        )

    def _on_activity_fail(self, t, event) -> None:
        self.activities.inc(("failed",))

    def _on_activity_cancel(self, t, event) -> None:
        self.activities.inc(("cancelled",))
        self.retries_per_activity.observe(
            self._retry_counts.pop(event.uid, 0)
        )

    def _on_wait_edge(self, t, event) -> None:
        shard = event.shard if event.shard is not None else "none"
        if event.op == "insert":
            self.parks.inc((shard,))
            self._park_since[event.seq] = (t, shard)
        else:
            since = self._park_since.pop(event.seq, None)
            if since is not None:
                self.park_duration.observe(t - since[0], (since[1],))

    def _on_deadlock_victim(self, t, event) -> None:
        self.deadlock_victims.inc()

    def _on_deadlock_forced(self, t, event) -> None:
        self.deadlock_forced.inc()

    def _on_fault(self, t, event) -> None:
        self.faults.inc((event.channel,))

    def _on_breaker(self, t, event) -> None:
        self.breaker_transitions.inc(
            (event.subsystem, event.to_state)
        )
        self.breaker_state.set(
            BREAKER_STATE_VALUES.get(event.to_state, -1.0),
            (event.subsystem,),
        )

    def _on_admission(self, t, event) -> None:
        self.admission.inc((event.op,))

    def _on_backpressure(self, t, event) -> None:
        self.backpressure.inc((event.op,))

    def _on_degrade(self, t, event) -> None:
        self.degraded.set(1.0 if event.active else 0.0)
        if event.active:
            self.wcc_cap.set(event.cap)

    def _on_retry_budget(self, t, event) -> None:
        subsystem = (
            event.subsystem if event.subsystem is not None else "none"
        )
        self.retry_budget.inc((subsystem,))


# ----------------------------------------------------------------------
# tee tracer
# ----------------------------------------------------------------------
class MetricsTracer:
    """Enabled tracer that feeds metrics and forwards to sink tracers.

    Sinks stamp events exactly as they would standalone (each keeps its
    own sequence counter and clock binding), so wrapping a
    :class:`~repro.obs.tracer.Tracer` in a tee leaves its records
    byte-identical.  The fault injector's crash-offset bump propagates
    to every sink through the :attr:`offset` property.
    """

    enabled = True

    def __init__(
        self,
        metrics: EventMetrics | None = None,
        sinks: Sequence = (),
        recorder=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else EventMetrics()
        self.sinks = tuple(sinks)
        self.recorder = recorder
        self._offset = 0.0
        self._clock: Callable[[], float] = lambda: 0.0
        self._sampler: Callable[[], dict[str, float]] | None = None
        self._last_sample: dict[str, float] = {}
        self._seq = itertools.count()

    @property
    def offset(self) -> float:
        return self._offset

    @offset.setter
    def offset(self, value: float) -> None:
        self._offset = value
        for sink in self.sinks:
            sink.offset = value

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        for sink in self.sinks:
            sink.bind_clock(clock)

    def bind_sampler(
        self, sampler: Callable[[], dict[str, float]] | None
    ) -> None:
        # The tee polls the (possibly O(live-work)) sampler once per
        # emit and shares the result: sinks get a view of the poll this
        # emit already took, not the raw sampler — same per-emit gauge
        # cadence in their series banks at half the sampling cost.
        self._sampler = sampler
        shared = None if sampler is None else (lambda: self._last_sample)
        for sink in self.sinks:
            sink.bind_sampler(shared)

    @property
    def now(self) -> float:
        return self._clock() + self._offset

    def emit(self, event) -> None:
        t = self._clock() + self._offset
        self.metrics.observe(t, event)
        recorder = self.recorder
        if recorder is not None:
            recorder.append(next(self._seq), t, event)
        sampler = self._sampler
        if sampler is not None:
            self._last_sample = sampler()
            self.metrics.sample_gauges(self._last_sample)
        for sink in self.sinks:
            sink.emit(event)


def replay_metrics(records: Iterable[dict]) -> EventMetrics:
    """Rebuild an :class:`EventMetrics` from exported JSONL records.

    The registry produced here matches the one a live
    :class:`MetricsTracer` built from the same stream (sampler-polled
    gauges excepted — records carry no gauge samples, so those replay
    from the gauge series only if present, i.e. not at all).
    """
    from repro.obs.export import record_to_event

    metrics = EventMetrics()
    for record in records:
        event = record_to_event(record)
        metrics.observe(record["t"], event)
    return metrics
