"""Virtual-time series collectors.

A :class:`SeriesBank` accumulates two shapes of telemetry while a traced
run executes:

* **gauges** — ``(virtual time, value)`` step series sampled on manager
  events (parked-request count, lock-table depth, live processes,
  in-flight activities, per-process Wcc).  Consecutive equal samples are
  deduplicated, so a gauge stores one point per *change*.
* **histograms** — counters keyed by a label (defer reasons,
  conflict-hit counts per activity type, cascade victims per type).

The bank is fed by the :class:`~repro.obs.tracer.Tracer` (which derives
histogram bumps from the event stream and polls the bound gauge sampler
on every emit) and serialized by ``to_dict`` for the ``series.json``
export and the Perfetto counter tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One step series of ``(t, value)`` samples (deduplicated)."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        if self.points and self.points[-1][1] == value:
            return
        self.points.append((t, value))

    @property
    def last(self) -> float | None:
        return self.points[-1][1] if self.points else None

    @property
    def peak(self) -> float | None:
        return max((v for __, v in self.points), default=None)


class SeriesBank:
    """Named gauges plus labelled histograms for one traced run."""

    def __init__(self) -> None:
        self.gauges: dict[str, Series] = {}
        self.histograms: dict[str, dict[str, int]] = {}

    def gauge(self, name: str, t: float, value: float) -> None:
        series = self.gauges.get(name)
        if series is None:
            series = self.gauges[name] = Series(name)
        series.record(t, value)

    def bump(self, histogram: str, key: str, n: int = 1) -> None:
        bucket = self.histograms.setdefault(histogram, {})
        bucket[key] = bucket.get(key, 0) + n

    def to_dict(self) -> dict:
        return {
            "gauges": {
                name: [[t, value] for t, value in series.points]
                for name, series in sorted(self.gauges.items())
            },
            "histograms": {
                name: dict(sorted(bucket.items()))
                for name, bucket in sorted(self.histograms.items())
            },
        }
