"""Shared helpers for evaluating the six process-locking rules.

The protocol's rules all start the same way: collect the live locks held
by *other* processes on activity types conflicting with the request and
partition the holders by age (process timestamp), mode, and state.
:func:`partition_holders` performs that triage; the rule methods on
:class:`~repro.core.protocol.ProcessLockManager` turn a partition into a
decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.locks import LockEntry, LockMode
from repro.process.instance import Process
from repro.process.state import ProcessState


@dataclass(slots=True)
class HolderPartition:
    """Conflicting lock holders, split the way the rules need them.

    All sets contain pids.  A process appears in several buckets when it
    holds several relevant locks (e.g. both a C and a P lock).
    """

    older_c: set[int] = field(default_factory=set)
    older_p: set[int] = field(default_factory=set)
    younger_running_c: set[int] = field(default_factory=set)
    younger_running_p: set[int] = field(default_factory=set)
    younger_completing: set[int] = field(default_factory=set)
    aborting: set[int] = field(default_factory=set)
    older_running: set[int] = field(default_factory=set)
    older_running_c: set[int] = field(default_factory=set)

    @property
    def any_p(self) -> set[int]:
        return self.older_p | self.younger_running_p

    @property
    def empty(self) -> bool:
        return not (
            self.older_c
            or self.older_p
            or self.younger_running_c
            or self.younger_running_p
            or self.younger_completing
            or self.aborting
        )


def partition_holders(
    requester: Process, conflicting: list[LockEntry]
) -> HolderPartition:
    """Triage conflicting lock entries relative to ``requester``.

    ``conflicting`` must already exclude the requester's own locks.
    Aborting holders land in :attr:`HolderPartition.aborting` regardless
    of age (they cannot be aborted again; requests wait for them).
    Completing holders land in :attr:`HolderPartition.younger_completing`
    when younger; an *older* completing holder is classified by its lock
    mode like any older holder (sharing behind it is safe — it terminates
    without compensating).
    """
    partition = HolderPartition()
    if not conflicting:
        return partition
    requester_ts = requester.timestamp
    aborting_state = ProcessState.ABORTING
    running_state = ProcessState.RUNNING
    completing_state = ProcessState.COMPLETING
    mode_c = LockMode.C
    aborting_add = partition.aborting.add
    older_running_add = partition.older_running.add
    older_running_c_add = partition.older_running_c.add
    older_c_add = partition.older_c.add
    older_p_add = partition.older_p.add
    younger_completing_add = partition.younger_completing.add
    younger_running_c_add = partition.younger_running_c.add
    younger_running_p_add = partition.younger_running_p.add
    for entry in conflicting:
        holder = entry.process
        state = holder.state
        pid = holder.pid
        if state is aborting_state:
            aborting_add(pid)
            continue
        is_c = entry.mode is mode_c
        if holder.timestamp < requester_ts:
            if state is running_state:
                older_running_add(pid)
                if is_c:
                    older_running_c_add(pid)
            if is_c:
                older_c_add(pid)
            else:
                older_p_add(pid)
        else:
            if state is completing_state:
                younger_completing_add(pid)
            elif is_c:
                younger_running_c_add(pid)
            else:
                younger_running_p_add(pid)
    return partition
