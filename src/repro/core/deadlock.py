"""Wait-for bookkeeping and deadlock handling.

Process locking's waits are timestamp-disciplined: almost every deferment
makes a *younger* process wait for an *older* one, and the remaining
exceptions target the unique completing process (which itself never waits
on a running process) or aborting processes (which always terminate).
Under the basic protocol wait-for cycles therefore cannot form — this is
the paper's "timestamp-based deadlock prevention".

The cost-based extension introduces pseudo pivots whose P locks can make
an *older* process wait for a *younger running* one, so cycles become
possible there.  :class:`WaitForGraph` detects them; the victim is the
youngest *running* process on the cycle (never a completing one, which by
construction cannot be required).

The graph doubles as an auditor: simulations assert acyclicity after every
step when the cost-based extension is off.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import networkx as nx

from repro.errors import ProtocolError


def has_cycle(adjacency: Mapping[int, Iterable[int]]) -> bool:
    """Whether the directed graph ``adjacency`` contains a cycle.

    Iterative three-color depth-first search over a plain mapping.  The
    scheduler runs this on every park as a guard in front of the much
    heavier :meth:`WaitForGraph.find_cycle` (which must materialize a
    :mod:`networkx` graph); waits are almost always acyclic, so the
    guard turns the per-park deadlock check into cheap dict walks.
    """
    done: set[int] = set()
    on_path: set[int] = set()
    for root in adjacency:
        if root in done:
            continue
        # stack of (node, iterator over its successors)
        stack = [(root, iter(adjacency.get(root, ())))]
        on_path.add(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for nxt in successors:
                if nxt in on_path:
                    return True
                if nxt not in done:
                    on_path.add(nxt)
                    stack.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.discard(node)
                done.add(node)
    return False


class WaitForGraph:
    """Directed waits-for graph over process ids."""

    def __init__(self) -> None:
        self._graph: nx.DiGraph = nx.DiGraph()

    def set_waits(self, waiter: int, blockers: frozenset[int]) -> None:
        """Replace the outgoing wait edges of ``waiter``."""
        self.clear_waits(waiter)
        for blocker in blockers:
            if blocker != waiter:
                self._graph.add_edge(waiter, blocker)

    def clear_waits(self, waiter: int) -> None:
        """Remove all outgoing wait edges of ``waiter``."""
        if self._graph.has_node(waiter):
            for blocker in list(self._graph.successors(waiter)):
                self._graph.remove_edge(waiter, blocker)

    def remove_process(self, pid: int) -> None:
        """Drop a terminated process from the graph entirely."""
        if self._graph.has_node(pid):
            self._graph.remove_node(pid)

    def find_cycle(self) -> list[int] | None:
        """Return one wait cycle as a list of pids, or ``None``.

        Guarded by :func:`has_cycle`; the :mod:`networkx` edge search
        (which picks the *same* cycle the original unguarded code did)
        only runs when a cycle actually exists.
        """
        if not has_cycle(self._graph.adj):
            return None
        cycle = nx.find_cycle(self._graph)
        return [edge[0] for edge in cycle]

    def assert_acyclic(self) -> None:
        """Raise :class:`ProtocolError` when a wait cycle exists."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise ProtocolError(
                f"wait-for cycle detected: {' -> '.join(map(str, cycle))}"
            )

    def waiters(self) -> set[int]:
        """All processes with at least one outgoing wait edge."""
        return {
            node
            for node in self._graph.nodes
            if self._graph.out_degree(node) > 0
        }

    def edges(self) -> list[tuple[int, int]]:
        return list(self._graph.edges)


def choose_cycle_victim(
    cycle: list[int],
    timestamps: dict[int, int],
    running: set[int],
    protected: set[int] | None = None,
) -> int:
    """Pick the youngest running process on a wait cycle.

    ``protected`` processes (pseudo-pivot P-lock holders under the
    cost-based extension) are sacrificed only when every running cycle
    member is protected — deadlock resolution honours cascade
    protection as far as possible.

    Raises
    ------
    ProtocolError
        If no process on the cycle is running (would mean the protocol
        created a cycle of unabortable processes — Theorem 1's argument
        excludes this for correct implementations).
    """
    candidates = [pid for pid in cycle if pid in running]
    if not candidates:
        raise ProtocolError(
            f"unresolvable wait cycle {cycle}: no running process to abort"
        )
    if protected:
        unprotected = [
            pid for pid in candidates if pid not in protected
        ]
        if unprotected:
            candidates = unprotected
    return max(candidates, key=lambda pid: timestamps[pid])
