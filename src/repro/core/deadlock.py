"""Wait-for bookkeeping and deadlock handling.

Process locking's waits are timestamp-disciplined: almost every deferment
makes a *younger* process wait for an *older* one, and the remaining
exceptions target the unique completing process (which itself never waits
on a running process) or aborting processes (which always terminate).
Under the basic protocol wait-for cycles therefore cannot form — this is
the paper's "timestamp-based deadlock prevention".

The cost-based extension introduces pseudo pivots whose P locks can make
an *older* process wait for a *younger running* one, so cycles become
possible there.  Detection runs on every park, so it is hot-path code:

* :class:`IncrementalWaitFor` maintains reachability under edge
  insert/delete (Pearce–Kelly topological-order maintenance), answering
  the common acyclic park in O(1) amortized;
* :class:`WaitForGraph` over :class:`Digraph` reproduces the original
  (historically networkx-backed) cycle *search* — byte-for-byte the same
  cycle, hence the same victim — and only runs once a cycle exists.

Everything here is pure Python; the real networkx implementations
survive only as oracles in :mod:`repro.core.reference` and the property
tests.  The victim is the youngest *running* process on the cycle (never
a completing one, which by construction cannot be required).

The graph doubles as an auditor: simulations assert acyclicity after
every step when the cost-based extension is off.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import ProtocolError


def has_cycle(adjacency: Mapping[int, Iterable[int]]) -> bool:
    """Whether the directed graph ``adjacency`` contains a cycle.

    Iterative three-color depth-first search over a plain mapping.  This
    is the naive O(nodes + edges) formulation; the scheduler's hot path
    uses :class:`IncrementalWaitFor` instead and keeps this walk as the
    audit-time cross-check (and as the guard in front of the full cycle
    search when a cycle does exist).
    """
    done: set[int] = set()
    on_path: set[int] = set()
    for root in adjacency:
        if root in done:
            continue
        # stack of (node, iterator over its successors)
        stack = [(root, iter(adjacency.get(root, ())))]
        on_path.add(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for nxt in successors:
                if nxt in on_path:
                    return True
                if nxt not in done:
                    on_path.add(nxt)
                    stack.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.discard(node)
                done.add(node)
    return False


class Digraph:
    """Minimal insertion-ordered directed simple graph.

    Replicates the slice of ``networkx.DiGraph`` semantics this codebase
    relies on: node and edge iteration follow insertion order, adding an
    edge inserts missing endpoints (tail before head), removing an edge
    keeps its endpoints, and removing a node drops its incident edges in
    both directions.  Iteration order matters — the cycle search below
    walks nodes and out-edges in insertion order, and which cycle it
    returns decides which process the manager sacrifices.
    """

    __slots__ = ("_succ", "_pred")

    def __init__(self) -> None:
        # node -> {neighbor: None}; plain dicts give insertion order.
        self._succ: dict[int, dict[int, None]] = {}
        self._pred: dict[int, dict[int, None]] = {}

    def __contains__(self, node: int) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[int]:
        return iter(self._succ)

    @property
    def nodes(self) -> Iterator[int]:
        return iter(self._succ)

    @property
    def edges(self) -> Iterator[tuple[int, int]]:
        return (
            (tail, head)
            for tail, heads in self._succ.items()
            for head in heads
        )

    @property
    def adj(self) -> Mapping[int, Mapping[int, None]]:
        return self._succ

    def add_node(self, node: int) -> None:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, tail: int, head: int) -> None:
        self.add_node(tail)
        self.add_node(head)
        self._succ[tail][head] = None
        self._pred[head][tail] = None

    def remove_edge(self, tail: int, head: int) -> None:
        del self._succ[tail][head]
        del self._pred[head][tail]

    def remove_node(self, node: int) -> None:
        for head in self._succ.pop(node):
            del self._pred[head][node]
        for tail in self._pred.pop(node):
            del self._succ[tail][node]

    def successors(self, node: int) -> Iterator[int]:
        return iter(self._succ.get(node, ()))

    def out_degree(self, node: int) -> int:
        return len(self._succ.get(node, ()))


def _edge_dfs(graph: Digraph, start_node: int) -> Iterator[tuple[int, int]]:
    """Depth-first search of *edges* from ``start_node``.

    Faithful port of ``networkx.edge_dfs`` specialized to a directed
    simple graph with ``orientation=None`` and a single start node: lazy
    per-node out-edge generators, a visited-edge set, and an explicit
    node stack, yielding edges in exactly the order networkx would.
    """
    visited_edges: set[tuple[int, int]] = set()
    visited_nodes: set[int] = set()
    generators: dict[int, Iterator[tuple[int, int]]] = {}
    stack = [start_node]
    while stack:
        current = stack[-1]
        if current not in visited_nodes:
            generators[current] = (
                (current, head)
                for head in graph._succ.get(current, ())
            )
            visited_nodes.add(current)
        try:
            edge = next(generators[current])
        except StopIteration:
            stack.pop()
        else:
            if edge not in visited_edges:
                visited_edges.add(edge)
                stack.append(edge[1])
                yield edge


def find_cycle_edges(
    graph: Digraph,
) -> list[tuple[int, int]] | None:
    """One cycle of ``graph`` as an edge list, or ``None``.

    Faithful port of ``networkx.find_cycle`` (directed graph,
    ``orientation=None``): start nodes are tried in insertion order, the
    edge-DFS tracks the active path with explicit backtrack pops, and
    the prefix leading into the cycle is pruned at the end.  Because the
    traversal order matches networkx exactly, it returns the *same*
    cycle the historical nx-backed implementation did — the property
    tests assert that against the real networkx as an oracle.
    """
    explored: set[int] = set()
    cycle: list[tuple[int, int]] = []
    final_node: int | None = None
    for start_node in graph:
        if start_node in explored:
            # No loop is possible.
            continue
        edges: list[tuple[int, int]] = []
        # All nodes seen in this iteration of the edge DFS.
        seen = {start_node}
        # Nodes on the active path.
        active_nodes = {start_node}
        previous_head: int | None = None
        for edge in _edge_dfs(graph, start_node):
            tail, head = edge
            if head in explored:
                # Already fully explored; no loop through here.
                continue
            if previous_head is not None and tail != previous_head:
                # This edge results from backtracking: pop the active
                # path until its last head equals the current tail.
                while True:
                    try:
                        popped_edge = edges.pop()
                    except IndexError:
                        edges = []
                        active_nodes = {tail}
                        break
                    else:
                        popped_head = popped_edge[1]
                        active_nodes.remove(popped_head)
                    if edges:
                        last_head = edges[-1][1]
                        if tail == last_head:
                            break
            edges.append(edge)
            if head in active_nodes:
                # We have a loop.
                cycle.extend(edges)
                final_node = head
                break
            seen.add(head)
            active_nodes.add(head)
            previous_head = head
        if cycle:
            break
        explored.update(seen)
    if not cycle:
        return None
    # Prune the leading edges that are not part of the cycle proper.
    i = 0
    for i, edge in enumerate(cycle):
        if edge[0] == final_node:
            break
    return cycle[i:]


def topological_order(graph: Digraph) -> list[int]:
    """A topological order of ``graph``.

    Port of ``networkx.topological_sort`` (which yields node after node
    out of ``topological_generations``): zero-indegree nodes are
    processed generation by generation in node-insertion order, so the
    returned order is exactly what networkx would produce.

    Raises
    ------
    ProtocolError
        If the graph contains a cycle.
    """
    indegree: dict[int, int] = {}
    zero_indegree: list[int] = []
    for node in graph:
        degree = len(graph._pred[node])
        if degree > 0:
            indegree[node] = degree
        else:
            zero_indegree.append(node)
    order: list[int] = []
    while zero_indegree:
        this_generation = zero_indegree
        zero_indegree = []
        for node in this_generation:
            order.append(node)
            for child in graph._succ[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    zero_indegree.append(child)
                    del indegree[child]
    if indegree:
        raise ProtocolError(
            "topological_order: graph contains a cycle"
        )
    return order


class WaitForGraph:
    """Directed waits-for graph over process ids."""

    def __init__(self) -> None:
        self._graph = Digraph()

    def set_waits(self, waiter: int, blockers: frozenset[int]) -> None:
        """Replace the outgoing wait edges of ``waiter``."""
        self.clear_waits(waiter)
        for blocker in blockers:
            if blocker != waiter:
                self._graph.add_edge(waiter, blocker)

    def clear_waits(self, waiter: int) -> None:
        """Remove all outgoing wait edges of ``waiter``."""
        if waiter in self._graph:
            for blocker in list(self._graph.successors(waiter)):
                self._graph.remove_edge(waiter, blocker)

    def remove_process(self, pid: int) -> None:
        """Drop a terminated process from the graph entirely."""
        if pid in self._graph:
            self._graph.remove_node(pid)

    def find_cycle(self) -> list[int] | None:
        """Return one wait cycle as a list of pids, or ``None``.

        Guarded by :func:`has_cycle`; the full edge search (which picks
        the *same* cycle the original networkx code did) only runs when
        a cycle actually exists.
        """
        if not has_cycle(self._graph.adj):
            return None
        cycle = find_cycle_edges(self._graph)
        return [edge[0] for edge in cycle]

    def assert_acyclic(self) -> None:
        """Raise :class:`ProtocolError` when a wait cycle exists."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise ProtocolError(
                f"wait-for cycle detected: {' -> '.join(map(str, cycle))}"
            )

    def waiters(self) -> set[int]:
        """All processes with at least one outgoing wait edge."""
        return {
            node
            for node in self._graph
            if self._graph.out_degree(node) > 0
        }

    def edges(self) -> list[tuple[int, int]]:
        return list(self._graph.edges)


class IncrementalWaitFor:
    """Incremental wait-for cycle maintenance (Pearce–Kelly).

    Maintains a topological order of the wait-for graph under edge
    insertion and deletion, so the per-park "is there a deadlock?"
    question is answered without re-walking the parked set:

    * inserting an edge that already respects the order is **O(1)**;
    * an order-violating insert reorders only the *affected region*
      between the endpoints (Pearce & Kelly's discovery/reassignment);
    * an insert that closes a cycle keeps the edge and marks the
      maintainer *dirty* — :meth:`acyclic` then answers ``False`` via a
      full Kahn pass until deletions break the cycle (cycles are rare
      and the manager resolves them immediately);
    * deletions are **O(1)** — removing an edge never invalidates a
      topological order.

    Edges carry multiplicities: two parked requests may contribute the
    same waiter→blocker pair, and insert/delete must pair up exactly.

    Fresh nodes are allocated indices *below* every existing one (and an
    edge's blocker endpoint is materialized before its waiter), so the
    protocol's dominant edge shape — a freshly parked younger process
    waiting on an established older holder — is order-consistent on
    arrival and costs no reorder at all.

    ``ops`` counts nodes visited by reorder/rebuild passes.  It is the
    observable for the O(1)-amortized claim: a park whose edges respect
    the current order leaves ``ops`` untouched, where the historical
    per-park DFS visited every parked process.
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_multi",
        "_ord",
        "_floor",
        "_dirty",
        "ops",
    )

    def __init__(self) -> None:
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}
        self._multi: dict[tuple[int, int], int] = {}
        # Topological index: every edge w→b satisfies ord[w] < ord[b]
        # while the graph is acyclic (waiters sort before blockers).
        self._ord: dict[int, int] = {}
        #: Smallest index handed out so far; fresh nodes go below it.
        self._floor = 0
        self._dirty = False
        #: Nodes visited by affected-region reorders and Kahn rebuilds.
        self.ops = 0

    def _ensure(self, node: int) -> None:
        if node not in self._ord:
            self._floor -= 1
            self._ord[node] = self._floor
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, waiter: int, blocker: int) -> None:
        """Insert one waiter→blocker contribution."""
        if waiter == blocker:
            return
        key = (waiter, blocker)
        count = self._multi.get(key, 0)
        self._multi[key] = count + 1
        if count:
            return
        # Blocker first: when both endpoints are new, the waiter lands
        # below the blocker and the edge is consistent immediately.
        self._ensure(blocker)
        self._ensure(waiter)
        self._succ[waiter].add(blocker)
        self._pred[blocker].add(waiter)
        if self._dirty:
            # Already cyclic; order maintenance resumes at the next
            # acyclic() rebuild.
            return
        ord_ = self._ord
        if ord_[waiter] < ord_[blocker]:
            return
        # Affected region (Pearce–Kelly): nodes reachable forward from
        # the blocker and backward from the waiter whose indices lie in
        # [ord[blocker], ord[waiter]].  Anything outside that window
        # keeps its index, which is what makes the acyclic insert
        # amortized O(1) for timestamp-disciplined waits.
        upper = ord_[waiter]
        lower = ord_[blocker]
        delta_f: list[int] = []
        stack = [blocker]
        seen = {blocker}
        while stack:
            node = stack.pop()
            self.ops += 1
            delta_f.append(node)
            for nxt in self._succ[node]:
                if nxt == waiter:
                    # blocker ⇝ waiter existed already: the new edge
                    # closes a cycle.  Keep it; answer via Kahn.
                    self._dirty = True
                    return
                if nxt not in seen and ord_[nxt] <= upper:
                    seen.add(nxt)
                    stack.append(nxt)
        delta_b: list[int] = []
        stack = [waiter]
        seen_b = {waiter}
        while stack:
            node = stack.pop()
            self.ops += 1
            delta_b.append(node)
            for prev in self._pred[node]:
                if prev not in seen_b and ord_[prev] >= lower:
                    seen_b.add(prev)
                    stack.append(prev)
        delta_b.sort(key=ord_.__getitem__)
        delta_f.sort(key=ord_.__getitem__)
        affected = delta_b + delta_f
        pool = sorted(ord_[node] for node in affected)
        for node, index in zip(affected, pool):
            ord_[node] = index

    def remove_edge(self, waiter: int, blocker: int) -> None:
        """Remove one waiter→blocker contribution.

        Raises ``KeyError`` if the pair was never inserted — the manager
        tracks its contributions exactly, so a miss is a bug.
        """
        if waiter == blocker:
            return
        key = (waiter, blocker)
        count = self._multi[key]
        if count > 1:
            self._multi[key] = count - 1
            return
        del self._multi[key]
        self._succ[waiter].discard(blocker)
        self._pred[blocker].discard(waiter)
        # Deletions never create cycles; while dirty, the next
        # acyclic() call re-checks whether this one broke the last one.

    def discard_node(self, node: int) -> None:
        """Drop a node that no longer carries any contribution."""
        if node not in self._ord:
            return
        if self._succ[node] or self._pred[node]:
            raise ProtocolError(
                f"discard_node({node}): contributions still present"
            )
        del self._succ[node]
        del self._pred[node]
        del self._ord[node]

    def acyclic(self) -> bool:
        """Whether the current wait-for graph is acyclic.

        O(1) while the maintained order is intact; after a
        cycle-closing insert it costs one Kahn pass per call until the
        cycle is gone, at which point the pass doubles as the order
        rebuild.
        """
        if not self._dirty:
            return True
        order = self._kahn()
        if order is None:
            return False
        for index, node in enumerate(order):
            self._ord[node] = index
        # Fresh nodes keep landing below every rebuilt index.
        self._floor = 0
        self._dirty = False
        return True

    def _kahn(self) -> list[int] | None:
        indegree = {
            node: len(preds) for node, preds in self._pred.items()
        }
        ready = [node for node, deg in indegree.items() if deg == 0]
        order: list[int] = []
        while ready:
            node = ready.pop()
            self.ops += 1
            order.append(node)
            for nxt in self._succ[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(indegree):
            return None
        return order

    def edges(self) -> list[tuple[int, int]]:
        return list(self._multi)

    def edge_count(self) -> int:
        return len(self._multi)

    def adjacency(self) -> dict[int, set[int]]:
        """Plain successor mapping (for audits against the oracle)."""
        return {
            node: set(succs)
            for node, succs in self._succ.items()
        }


def choose_cycle_victim(
    cycle: list[int],
    timestamps: dict[int, int],
    running: set[int],
    protected: set[int] | None = None,
) -> int:
    """Pick the youngest running process on a wait cycle.

    ``protected`` processes (pseudo-pivot P-lock holders under the
    cost-based extension) are sacrificed only when every running cycle
    member is protected — deadlock resolution honours cascade
    protection as far as possible.

    Raises
    ------
    ProtocolError
        If no process on the cycle is running (would mean the protocol
        created a cycle of unabortable processes — Theorem 1's argument
        excludes this for correct implementations).
    """
    candidates = [pid for pid in cycle if pid in running]
    if not candidates:
        raise ProtocolError(
            f"unresolvable wait cycle {cycle}: no running process to abort"
        )
    if protected:
        unprotected = [
            pid for pid in candidates if pid not in protected
        ]
        if unprotected:
            candidates = unprotected
    return max(candidates, key=lambda pid: timestamps[pid])
