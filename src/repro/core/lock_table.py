"""The activity-type lock table with ordered sharing.

For each activity type the table keeps the ordered list of live locks (the
paper's "ordered list ... which comprises the locks held for all
invocations of that activity").  Sharing order is the global acquisition
order, materialized in :attr:`LockEntry.position`.

The table is pure bookkeeping: all *policy* (who may share behind whom,
who gets aborted) lives in :mod:`repro.core.protocol`.

Bookkeeping is *incremental* (see ``docs/performance.md``): besides the
primary per-type and per-process lists, the table maintains

* a per-process list of C-mode locks (kept current through
  Comp→Piv conversions, which notify the table);
* a per-process count of P-mode locks (powers :meth:`p_lock_holders`);
* the **blocker index**: a pair of adjacency maps over pids recording,
  for every process, which other live processes hold a conflicting lock
  with a smaller sharing position (``blocked_by``) and the transposed
  "who waits on me" view (``blocks``).  Because positions are drawn from
  a strictly increasing global counter, every conflicting lock that
  exists when a new lock is appended has a smaller position — so edges
  are added on :meth:`acquire` and only ever removed by
  :meth:`release_all`, making :meth:`commit_blockers` and
  :meth:`on_hold` O(1) lookups instead of O(locks²) rescans.

The per-type lists are position-sorted *by construction* (appends use a
monotone counter; releases preserve relative order), so
:meth:`conflicting_locks` flat-collects the candidate lists and lets
timsort exploit the already-sorted runs (positions are globally unique,
so this reproduces the k-way merge order exactly).

Conflict discovery runs on the **compiled plane**
(:meth:`ConflictMatrix.compiled`): the table keeps a bitmask of types
with at least one live lock (``_live_mask``) plus one held-types
bitmask per process (``_pid_type_masks``), so "which held types
conflict with ``t``" is ``masks[t] & _live_mask`` and "does P hold
anything conflicting with ``t``" is one AND against P's mask — no
frozenset iteration, no per-pair frozenset allocation.  The plane is
adopted by identity and resynced whenever the conflict relation
mutates or a type registers late (see :meth:`_live_plane`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from operator import attrgetter

from repro.activities.commutativity import ConflictMatrix, iter_bits
from repro.core.locks import LockEntry, LockMode
from repro.errors import ProtocolError
from repro.process.instance import Process

#: C-level sort key shared by every position-ordered collect.
_BY_POSITION = attrgetter("position")


class LockTable:
    """Per-activity-type ordered lock lists plus incremental indexes."""

    def __init__(self, conflicts: ConflictMatrix) -> None:
        self._conflicts = conflicts
        self._conflicts_version = conflicts.version
        self._by_type: dict[str, list[LockEntry]] = {}
        self._by_pid: dict[int, list[LockEntry]] = {}
        self._c_by_pid: dict[int, list[LockEntry]] = {}
        self._p_counts: dict[int, int] = {}
        #: pid -> pids holding an earlier conflicting lock (live only).
        self._blocked_by: dict[int, set[int]] = {}
        #: pid -> pids holding a later conflicting lock (the transpose).
        self._blocks: dict[int, set[int]] = {}
        self._position = 0
        #: Adopted compiled conflict plane (resynced by identity).
        self._plane = conflicts.compiled()
        #: Bitmask of type ids with at least one live lock.
        self._live_mask = 0
        #: pid -> bitmask of type ids the process holds locks on.
        #: Bits are only ever cleared wholesale by :meth:`release_all`
        #: (strict 2PL: locks release all-at-once), which keeps the
        #: per-process masks exact without per-type refcounts.
        self._pid_type_masks: dict[int, int] = {}

    def _live_plane(self):
        """The current compiled plane, adopting a recompile if needed.

        Type ids are stable across recompiles (the registry is
        append-only), but a recompile may follow bulk conflict edits —
        the live masks are rebuilt from the per-type lists rather than
        trusting stale bits.
        """
        plane = self._conflicts.compiled()
        if plane is not self._plane:
            self._plane = plane
            index = plane.index
            mask = 0
            for type_name in self._by_type:
                mask |= 1 << index[type_name]
            self._live_mask = mask
            pid_masks: dict[int, int] = {}
            for pid, entries in self._by_pid.items():
                pid_mask = 0
                for entry in entries:
                    pid_mask |= 1 << index[entry.type_name]
                pid_masks[pid] = pid_mask
            self._pid_type_masks = pid_masks
        return plane

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def acquire(
        self,
        process: Process,
        type_name: str,
        mode: LockMode,
        activity_uid: int | None = None,
    ) -> LockEntry:
        """Append a granted lock to the type's list (policy pre-checked)."""
        self._sync()
        self._position += 1
        entry = LockEntry(
            process=process,
            type_name=type_name,
            mode=mode,
            position=self._position,
            activity_uid=activity_uid,
            table=self,
        )
        pid = process.pid
        by_type = self._by_type
        type_list = by_type.get(type_name)
        if type_list is None:
            by_type[type_name] = [entry]
        else:
            type_list.append(entry)
        by_pid = self._by_pid
        pid_list = by_pid.get(pid)
        if pid_list is None:
            by_pid[pid] = [entry]
        else:
            pid_list.append(entry)
        if mode is LockMode.C:
            c_list = self._c_by_pid.get(pid)
            if c_list is None:
                self._c_by_pid[pid] = [entry]
            else:
                c_list.append(entry)
        else:
            self._p_counts[pid] = self._p_counts.get(pid, 0) + 1
        plane = self._live_plane()
        bit = 1 << plane.id_of(type_name)
        self._live_mask |= bit
        pid_masks = self._pid_type_masks
        pid_masks[pid] = pid_masks.get(pid, 0) | bit
        # Blocker index: every live conflicting lock predates this one
        # (positions are globally monotone), so each foreign holder
        # becomes a blocker of ``pid`` right now — and never later.
        # One AND per live process decides holdership — the per-type
        # entry lists are never walked here.
        conflict_mask = plane.mask_of[type_name]
        if conflict_mask & self._live_mask:
            add_edge = self._add_block_edge
            for other_pid, held in pid_masks.items():
                if other_pid != pid and held & conflict_mask:
                    add_edge(other_pid, pid)
        return entry

    def release_all(self, pid: int) -> list[LockEntry]:
        """Drop every lock of ``pid`` (commit or abort of the process)."""
        released = self._by_pid.pop(pid, [])
        affected_types = {entry.type_name for entry in released}
        for type_name in affected_types:
            entries = self._by_type.get(type_name)
            if entries is None:  # pragma: no cover - defensive
                raise ProtocolError(
                    f"lock table corruption while releasing locks of "
                    f"P{pid} on {type_name!r}"
                )
            survivors = [e for e in entries if e.pid != pid]
            if survivors:
                self._by_type[type_name] = survivors
            else:
                del self._by_type[type_name]
                index = self._plane.index.get(type_name)
                if index is not None:
                    self._live_mask &= ~(1 << index)
        self._pid_type_masks.pop(pid, None)
        self._c_by_pid.pop(pid, None)
        self._p_counts.pop(pid, None)
        for waiter in self._blocks.pop(pid, ()):
            blockers = self._blocked_by.get(waiter)
            if blockers is not None:
                blockers.discard(pid)
                if not blockers:
                    del self._blocked_by[waiter]
        for blocker in self._blocked_by.pop(pid, ()):
            waiters = self._blocks.get(blocker)
            if waiters is not None:
                waiters.discard(pid)
                if not waiters:
                    del self._blocks[blocker]
        return released

    def _note_upgrade(self, entry: LockEntry) -> None:
        """Keep the mode indexes current through a Comp→Piv conversion.

        Called by :meth:`LockEntry.upgrade_to_p` after the mode flip; the
        blocker index is mode-agnostic and needs no update.
        """
        pid = entry.pid
        c_locks = self._c_by_pid.get(pid)
        if c_locks is not None:
            survivors = [e for e in c_locks if e is not entry]
            if survivors:
                self._c_by_pid[pid] = survivors
            else:
                del self._c_by_pid[pid]
        self._p_counts[pid] = self._p_counts.get(pid, 0) + 1

    def _add_block_edge(self, blocker: int, waiter: int) -> None:
        self._blocked_by.setdefault(waiter, set()).add(blocker)
        self._blocks.setdefault(blocker, set()).add(waiter)

    def _sync(self) -> None:
        """Rebuild the blocker index if the conflict relation changed.

        Declaring conflicts while locks are live is unusual (workloads
        build their matrix up front) but legal; the version check keeps
        the incremental index honest at the cost of one integer compare
        on the hot path.
        """
        if self._conflicts.version == self._conflicts_version:
            return
        self._conflicts_version = self._conflicts.version
        self._blocked_by = {}
        self._blocks = {}
        entries = [e for es in self._by_pid.values() for e in es]
        conflict = self._conflicts.conflict
        for mine in entries:
            for other in entries:
                if (
                    other.pid != mine.pid
                    and other.position < mine.position
                    and conflict(other.type_name, mine.type_name)
                ):
                    self._add_block_edge(other.pid, mine.pid)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def locks_of(self, pid: int) -> tuple[LockEntry, ...]:
        """Live locks of one process, in acquisition order."""
        return tuple(self._by_pid.get(pid, ()))

    def c_locks_of(self, pid: int) -> tuple[LockEntry, ...]:
        """Live C-mode locks of one process, in acquisition order."""
        return tuple(self._c_by_pid.get(pid, ()))

    def locks_on(self, type_name: str) -> tuple[LockEntry, ...]:
        """The ordered lock list of one activity type."""
        return tuple(self._by_type.get(type_name, ()))

    def conflicting_locks(
        self, type_name: str, exclude_pid: int | None = None
    ) -> list[LockEntry]:
        """Live locks on types conflicting with ``type_name``.

        Includes locks on ``type_name`` itself when the type
        self-conflicts (``CON(t, t)``), which is the common case for
        state-changing activities under perfect commutativity.  The
        per-type lists are position-sorted by construction and positions
        are globally unique, so a flat collect + timsort over the sorted
        runs reproduces the merge order without ``heapq.merge``'s
        per-element key calls.
        """
        plane = self._live_plane()
        live = plane.masks[plane.id_of(type_name)] & self._live_mask
        if not live:
            return []
        by_type = self._by_type
        names = plane.names
        if not live & (live - 1):
            # Single live conflicting type: its list is already sorted.
            entries = by_type[names[live.bit_length() - 1]]
            if exclude_pid is None:
                return list(entries)
            return [e for e in entries if e.pid != exclude_pid]
        result: list[LockEntry] = []
        extend = result.extend
        while live:
            low = live & -live
            entries = by_type[names[low.bit_length() - 1]]
            if exclude_pid is None:
                extend(entries)
            else:
                extend(e for e in entries if e.pid != exclude_pid)
            live ^= low
        result.sort(key=_BY_POSITION)
        return result

    def iter_conflicting(
        self, type_name: str, exclude_pid: int | None = None
    ) -> Iterator[LockEntry]:
        """Unordered iterator over live conflicting locks.

        The batch probe (:meth:`ProcessLockManager.probe_c_grants`) only
        needs *existence* of a disqualifying holder, not sharing order,
        so this skips :meth:`conflicting_locks`'s k-way merge and yields
        the per-type lists as-is — an early ``break`` in the caller then
        costs O(first counterexample), not O(all holders).
        """
        plane = self._live_plane()
        live = plane.masks[plane.id_of(type_name)] & self._live_mask
        by_type = self._by_type
        names = plane.names
        for i in iter_bits(live):
            for entry in by_type[names[i]]:
                if exclude_pid is None or entry.pid != exclude_pid:
                    yield entry

    def probe_blocked(
        self, type_name: str, exclude_pid: int, ts: int, aborting
    ) -> bool:
        """Whether any foreign conflicting holder is younger or aborting.

        The read-only half of the Comp-Rule for a RUNNING requester with
        timestamp ``ts`` (see
        :meth:`ProcessLockManager.probe_c_grants`), pushed down into the
        table and decided per *process*, not per lock: one AND against
        each live process's held-types mask finds the foreign holders,
        and every lock of a process shares its timestamp/state, so the
        per-entry scan collapses to a per-pid scan with early exit on
        the first counterexample.  ``aborting`` is the
        ``ProcessState.ABORTING`` sentinel (passed in to keep the table
        policy-free: it compares identity, it doesn't interpret states).
        """
        plane = self._live_plane()
        conflict_mask = plane.masks[plane.id_of(type_name)]
        if not conflict_mask & self._live_mask:
            return False
        by_pid = self._by_pid
        for other_pid, held in self._pid_type_masks.items():
            if other_pid == exclude_pid or not held & conflict_mask:
                continue
            holder = by_pid[other_pid][0].process
            if holder.timestamp >= ts or holder.state is aborting:
                return True
        return False

    def conflicting_locks_flat(
        self, type_name: str, exclude_pid: int
    ) -> list[LockEntry]:
        """:meth:`conflicting_locks`, built by collect-then-sort.

        Byte-identical output (positions are globally unique, so
        sorting by position reproduces the k-way merge order); the flat
        collect + timsort over already-sorted runs beats ``heapq.merge``
        whose key callable fires once per yielded element.
        """
        plane = self._live_plane()
        live = plane.masks[plane.id_of(type_name)] & self._live_mask
        by_type = self._by_type
        names = plane.names
        entries = [
            entry
            for i in iter_bits(live)
            for entry in by_type[names[i]]
            if entry.process.pid != exclude_pid
        ]
        entries.sort(key=_BY_POSITION)
        return entries

    def conflicting_younger_flat(
        self, type_name: str, exclude_pid: int, ts: int, aborting
    ) -> list[LockEntry]:
        """Conflicting entries whose holder is younger or aborting.

        The Comp-Rule denial for a RUNNING requester reads only the
        younger/aborting partition buckets (older holders can always be
        shared behind), so after a failed :meth:`probe_blocked` the
        caller partitions this filtered subset instead of the full
        holder list.  Position-sorting the subset preserves the exact
        bucket insertion order the full scan would have produced —
        filtering never reorders survivors.
        """
        plane = self._live_plane()
        live = plane.masks[plane.id_of(type_name)] & self._live_mask
        by_type = self._by_type
        names = plane.names
        entries: list[LockEntry] = []
        append = entries.append
        for i in iter_bits(live):
            for entry in by_type[names[i]]:
                holder = entry.process
                if holder.pid == exclude_pid:
                    continue
                if holder.timestamp >= ts or holder.state is aborting:
                    append(entry)
        entries.sort(key=_BY_POSITION)
        return entries

    def entry_for_activity(
        self, pid: int, activity_uid: int
    ) -> LockEntry | None:
        """The lock acquired for a specific activity invocation."""
        for entry in self._by_pid.get(pid, ()):
            if entry.activity_uid == activity_uid:
                return entry
        return None

    def commit_blockers(self, process: Process) -> set[int]:
        """Processes that must terminate before ``process`` may commit.

        Commit-Rule: a process cannot commit while any of its locks is on
        hold, i.e. while another live process holds a conflicting lock
        with a smaller sharing position.  Served from the incremental
        blocker index in O(answer).
        """
        self._sync()
        return set(self._blocked_by.get(process.pid, ()))

    def blockers_of(self, pid: int) -> frozenset[int]:
        """Pids holding an earlier conflicting lock than ``pid``."""
        self._sync()
        return frozenset(self._blocked_by.get(pid, ()))

    def waiters_on(self, pid: int) -> frozenset[int]:
        """Pids whose commit is held up by ``pid`` (the reverse map).

        The transpose of :meth:`blockers_of`: exactly the processes whose
        locks are on hold behind a lock of ``pid``.  Consumers that used
        to rebuild this relation by scanning every live lock (wait-graph
        construction, wake-up scheduling) read it here instead.
        """
        self._sync()
        return frozenset(self._blocks.get(pid, ()))

    def on_hold(self, process: Process) -> bool:
        """Whether any lock of ``process`` is currently on hold."""
        self._sync()
        return bool(self._blocked_by.get(process.pid))

    def holders(self) -> set[int]:
        """Pids of all processes currently holding locks."""
        return set(self._by_pid)

    def p_lock_holders(self) -> set[int]:
        """Pids of processes holding at least one P-mode lock."""
        return set(self._p_counts)

    def iter_entries(self) -> Iterator[LockEntry]:
        for entries in self._by_pid.values():
            yield from entries

    @property
    def lock_count(self) -> int:
        return sum(len(entries) for entries in self._by_pid.values())

    def check_invariants(self, live_pids: Iterable[int]) -> None:
        """Audit structural invariants (used by tests and the auditor).

        * every held lock belongs to a live process;
        * per-type lists are position-sorted;
        * the primary indexes agree;
        * the mode indexes (C lists, P counts) match the entries;
        * the blocker index matches a naive recomputation;
        * the live-type and per-process bitmasks match a recomputation
          from the primary lists, and the compiled conflict rows of
          every live type agree with the dict-based matrix (the
          dev-time oracle for the compiled plane).

        Syncs with the conflict matrix first: after a mid-run
        ``declare_conflict`` the blocker index is stale by design until
        the next query, and the audit must judge the synced state.
        """
        self._sync()
        live = set(live_pids)
        seen_ids: set[int] = set()
        for type_name, entries in self._by_type.items():
            positions = [entry.position for entry in entries]
            if positions != sorted(positions):
                raise ProtocolError(
                    f"lock list of {type_name!r} is not position-sorted"
                )
            for entry in entries:
                seen_ids.add(entry.lock_id)
                if entry.pid not in live:
                    raise ProtocolError(
                        f"lock {entry} belongs to a terminated process"
                    )
        index_ids = {e.lock_id for e in self.iter_entries()}
        if index_ids != seen_ids:
            raise ProtocolError("lock table indexes disagree")
        for pid, entries in self._by_pid.items():
            c_ids = [
                e.lock_id for e in entries if e.mode is LockMode.C
            ]
            if [e.lock_id for e in self._c_by_pid.get(pid, [])] != c_ids:
                raise ProtocolError(
                    f"C-lock index of P{pid} disagrees with the entries"
                )
            p_count = sum(
                1 for e in entries if e.mode is LockMode.P
            )
            if self._p_counts.get(pid, 0) != p_count:
                raise ProtocolError(
                    f"P-lock count of P{pid} disagrees with the entries"
                )
        self._check_blocker_index()
        self._check_masks()

    def _check_masks(self) -> None:
        plane = self._live_plane()
        index = plane.index
        expected_live = 0
        for type_name in self._by_type:
            expected_live |= 1 << index[type_name]
        if self._live_mask != expected_live:
            raise ProtocolError(
                f"live-type mask {self._live_mask:#x} disagrees with the "
                f"per-type lists ({expected_live:#x})"
            )
        expected_pid_masks = {
            pid: self._mask_of_entries(entries, index)
            for pid, entries in self._by_pid.items()
        }
        if self._pid_type_masks != expected_pid_masks:
            raise ProtocolError(
                "per-process type masks disagree with the per-pid lists"
            )
        for type_name in self._by_type:
            compiled_row = plane.conflicting_types(type_name)
            oracle_row = self._conflicts.conflicting_types(type_name)
            if compiled_row != oracle_row:
                raise ProtocolError(
                    f"compiled conflict row of {type_name!r} disagrees "
                    f"with the dict-based matrix: "
                    f"compiled={sorted(compiled_row)} "
                    f"oracle={sorted(oracle_row)}"
                )

    @staticmethod
    def _mask_of_entries(
        entries: Iterable[LockEntry], index: dict[str, int]
    ) -> int:
        mask = 0
        for entry in entries:
            mask |= 1 << index[entry.type_name]
        return mask

    def _check_blocker_index(self) -> None:
        from repro.core.reference import naive_blocked_by

        expected = naive_blocked_by(self)
        actual = {
            pid: set(blockers)
            for pid, blockers in self._blocked_by.items()
            if blockers
        }
        if actual != expected:
            raise ProtocolError(
                f"blocker index disagrees with naive recomputation: "
                f"index={actual} naive={expected}"
            )
        transpose: dict[int, set[int]] = {}
        for waiter, blockers in self._blocked_by.items():
            for blocker in blockers:
                transpose.setdefault(blocker, set()).add(waiter)
        blocks = {
            pid: set(waiters)
            for pid, waiters in self._blocks.items()
            if waiters
        }
        if blocks != transpose:
            raise ProtocolError(
                "blocks map is not the transpose of blocked_by"
            )
