"""The activity-type lock table with ordered sharing.

For each activity type the table keeps the ordered list of live locks (the
paper's "ordered list ... which comprises the locks held for all
invocations of that activity").  Sharing order is the global acquisition
order, materialized in :attr:`LockEntry.position`.

The table is pure bookkeeping: all *policy* (who may share behind whom,
who gets aborted) lives in :mod:`repro.core.protocol`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.activities.commutativity import ConflictMatrix
from repro.core.locks import LockEntry, LockMode
from repro.errors import ProtocolError
from repro.process.instance import Process


class LockTable:
    """Per-activity-type ordered lock lists plus a per-process index."""

    def __init__(self, conflicts: ConflictMatrix) -> None:
        self._conflicts = conflicts
        self._by_type: dict[str, list[LockEntry]] = {}
        self._by_pid: dict[int, list[LockEntry]] = {}
        self._position = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def acquire(
        self,
        process: Process,
        type_name: str,
        mode: LockMode,
        activity_uid: int | None = None,
    ) -> LockEntry:
        """Append a granted lock to the type's list (policy pre-checked)."""
        self._position += 1
        entry = LockEntry(
            process=process,
            type_name=type_name,
            mode=mode,
            position=self._position,
            activity_uid=activity_uid,
        )
        self._by_type.setdefault(type_name, []).append(entry)
        self._by_pid.setdefault(process.pid, []).append(entry)
        return entry

    def release_all(self, pid: int) -> list[LockEntry]:
        """Drop every lock of ``pid`` (commit or abort of the process)."""
        released = self._by_pid.pop(pid, [])
        for entry in released:
            try:
                self._by_type[entry.type_name].remove(entry)
            except (KeyError, ValueError):  # pragma: no cover - defensive
                raise ProtocolError(
                    f"lock table corruption while releasing {entry}"
                ) from None
            if not self._by_type[entry.type_name]:
                del self._by_type[entry.type_name]
        return released

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def locks_of(self, pid: int) -> list[LockEntry]:
        """Live locks of one process, in acquisition order."""
        return list(self._by_pid.get(pid, []))

    def c_locks_of(self, pid: int) -> list[LockEntry]:
        """Live C-mode locks of one process."""
        return [
            entry
            for entry in self._by_pid.get(pid, [])
            if entry.mode is LockMode.C
        ]

    def locks_on(self, type_name: str) -> list[LockEntry]:
        """The ordered lock list of one activity type."""
        return list(self._by_type.get(type_name, []))

    def conflicting_locks(
        self, type_name: str, exclude_pid: int | None = None
    ) -> list[LockEntry]:
        """Live locks on types conflicting with ``type_name``.

        Includes locks on ``type_name`` itself when the type
        self-conflicts (``CON(t, t)``), which is the common case for
        state-changing activities under perfect commutativity.
        """
        result: list[LockEntry] = []
        candidates = set(self._conflicts.conflicting_types(type_name))
        for candidate in candidates:
            for entry in self._by_type.get(candidate, ()):
                if exclude_pid is not None and entry.pid == exclude_pid:
                    continue
                result.append(entry)
        result.sort(key=lambda entry: entry.position)
        return result

    def entry_for_activity(
        self, pid: int, activity_uid: int
    ) -> LockEntry | None:
        """The lock acquired for a specific activity invocation."""
        for entry in self._by_pid.get(pid, ()):
            if entry.activity_uid == activity_uid:
                return entry
        return None

    def commit_blockers(self, process: Process) -> set[int]:
        """Processes that must terminate before ``process`` may commit.

        Commit-Rule: a process cannot commit while any of its locks is on
        hold, i.e. while another live process holds a conflicting lock
        with a smaller sharing position.
        """
        blockers: set[int] = set()
        for mine in self._by_pid.get(process.pid, ()):
            for other in self.conflicting_locks(
                mine.type_name, exclude_pid=process.pid
            ):
                if other.position < mine.position:
                    blockers.add(other.pid)
        return blockers

    def on_hold(self, process: Process) -> bool:
        """Whether any lock of ``process`` is currently on hold."""
        return bool(self.commit_blockers(process))

    def holders(self) -> set[int]:
        """Pids of all processes currently holding locks."""
        return set(self._by_pid)

    def p_lock_holders(self) -> set[int]:
        """Pids of processes holding at least one P-mode lock."""
        return {
            pid
            for pid, entries in self._by_pid.items()
            if any(e.mode is LockMode.P for e in entries)
        }

    def iter_entries(self) -> Iterator[LockEntry]:
        for entries in self._by_pid.values():
            yield from entries

    @property
    def lock_count(self) -> int:
        return sum(len(entries) for entries in self._by_pid.values())

    def check_invariants(self, live_pids: Iterable[int]) -> None:
        """Audit structural invariants (used by tests and the auditor).

        * every held lock belongs to a live process;
        * per-type lists are position-sorted;
        * the two indexes agree.
        """
        live = set(live_pids)
        seen_ids: set[int] = set()
        for type_name, entries in self._by_type.items():
            positions = [entry.position for entry in entries]
            if positions != sorted(positions):
                raise ProtocolError(
                    f"lock list of {type_name!r} is not position-sorted"
                )
            for entry in entries:
                seen_ids.add(entry.lock_id)
                if entry.pid not in live:
                    raise ProtocolError(
                        f"lock {entry} belongs to a terminated process"
                    )
        index_ids = {e.lock_id for e in self.iter_entries()}
        if index_ids != seen_ids:
            raise ProtocolError("lock table indexes disagree")
