"""Process locking: the paper's core contribution (Sections 3 and 4)."""

from repro.core.conformance import (
    CHECKS,
    ConformanceCheck,
    ConformanceReport,
    run_conformance,
)
from repro.core.cost_based import (
    Figure1Step,
    figure1_trace,
    is_pseudo_pivot,
    lemma1_holds,
    wcc_after,
    worst_case_cost,
)
from repro.core.deadlock import WaitForGraph, choose_cycle_victim
from repro.core.decisions import (
    AbortVictims,
    Decision,
    Defer,
    Grant,
    ProtocolStats,
)
from repro.core.lock_table import LockTable
from repro.core.locks import LockEntry, LockMode, can_ordered_share
from repro.core.protocol import ProcessLockManager
from repro.core.rules import HolderPartition, partition_holders

__all__ = [
    "CHECKS",
    "AbortVictims",
    "ConformanceCheck",
    "ConformanceReport",
    "run_conformance",
    "Decision",
    "Defer",
    "Figure1Step",
    "Grant",
    "HolderPartition",
    "LockEntry",
    "LockMode",
    "LockTable",
    "ProcessLockManager",
    "ProtocolStats",
    "WaitForGraph",
    "can_ordered_share",
    "choose_cycle_victim",
    "figure1_trace",
    "is_pseudo_pivot",
    "lemma1_holds",
    "partition_holders",
    "wcc_after",
    "worst_case_cost",
]
