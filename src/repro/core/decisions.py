"""Decision objects returned by the process-locking protocol.

Every lock request (and every commit attempt) resolves to exactly one of:

* :class:`Grant` — the request succeeded; locks were acquired (or the
  commit may proceed).
* :class:`Defer` — the request must wait until the named processes have
  terminated (or committed); the process manager parks the request and
  retries it on each relevant termination.
* :class:`AbortVictims` — timestamp order requires the named *running*
  processes to be aborted (cascading abort); the manager aborts them,
  resubmits them with their original timestamps, and then retries the
  request.

``Defer.reason`` carries a machine-readable tag used by metrics and tests
(e.g. ``"older-c-holders"``, ``"completing-token"``, ``"wait-aborting"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.locks import LockEntry


#: Decision ``reason`` tag -> the paper rule (or mechanism) that fired.
#: Consumed by the observability layer (:mod:`repro.obs`) to annotate
#: defer/self-abort events and by ``repro explain``'s causal accounts.
#: Unknown tags fall back to the tag itself via :func:`rule_for_reason`.
RULE_BY_REASON: dict[str, str] = {
    # process locking (core/protocol.py)
    "younger-completing-or-p-holder": "Comp-Rule",
    "piv-rule-defer": "Piv-Rule / Comp→Piv-Rule",
    "other-p-holder": "Piv-Rule (literal P-lock deferment)",
    "completing-token": "one-completing-process strategy",
    "completing-defers-on-pseudo": (
        "Comp-Rule (first-class requester vs pseudo-pivot protection)"
    ),
    "compensation-blocked-by-completing": "C⁻¹-Rule",
    "wait-aborting": "wait for abort-process execution (C⁻¹-Rule)",
    "commit-on-hold": "Commit-Rule (lock on hold)",
    # manager (scheduler/manager.py)
    "awaiting-cascade": "cascading abort in progress",
    # baselines
    "s2pl-wait": "S2PL exclusive-lock wait",
    "s2pl-completing-wait": "S2PL completing-process wait",
    "s2pl-compensation-wait": "S2PL compensation wait",
    "s2pl-die": "S2PL wait-die",
    "wait-die": "S2PL wait-die",
    "serial-token": "serial execution token",
}


def rule_for_reason(reason: str) -> str:
    """Human-readable rule name for a decision reason tag."""
    return RULE_BY_REASON.get(reason, reason)


@dataclass(frozen=True)
class Grant:
    """Request granted; ``locks`` lists the entries acquired (may be
    empty for commit grants)."""

    locks: tuple[LockEntry, ...] = ()


@dataclass(frozen=True)
class Defer:
    """Request deferred until the processes in ``wait_for`` terminate."""

    wait_for: frozenset[int]
    reason: str

    def __post_init__(self) -> None:
        if not self.wait_for:
            raise ValueError("Defer needs a non-empty wait set")


@dataclass(frozen=True)
class AbortVictims:
    """The named running processes must be cascade-aborted first."""

    victims: frozenset[int]

    def __post_init__(self) -> None:
        if not self.victims:
            raise ValueError("AbortVictims needs a non-empty victim set")


@dataclass(frozen=True)
class SelfAbort:
    """The *requesting* process must abort itself (and be resubmitted).

    Process locking never answers a request this way — its timestamp
    discipline always sacrifices younger lock *holders* — but baseline
    protocols do: wait-die S2PL kills a younger requester, and pure OSL
    aborts a process whose late commit-time validation fails.
    """

    reason: str


Decision = Grant | Defer | AbortVictims | SelfAbort


@dataclass
class ProtocolStats:
    """Counters describing the protocol's decisions during a run."""

    c_grants: int = 0
    p_grants: int = 0
    conversions: int = 0
    defers: int = 0
    defer_reasons: dict[str, int] = field(default_factory=dict)
    cascades_requested: int = 0
    cascade_victims: int = 0
    commit_defers: int = 0
    commits: int = 0
    aborts: int = 0

    def note_defer(self, reason: str) -> None:
        self.defers += 1
        self.defer_reasons[reason] = (
            self.defer_reasons.get(reason, 0) + 1
        )
