"""Cost-based process scheduling (paper Section 4).

The runtime decision logic lives in
:meth:`repro.core.protocol.ProcessLockManager.classify_regular` (the
algorithm of Figure 1).  This module provides the cost model *functions*
(Equations 1–3) plus an instrumented re-implementation of Figure 1 that
produces a step-by-step trace — used by the exhibit generator and the
Figure-1 benchmark, and cross-checked against the protocol's behaviour in
tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.activities.registry import ActivityRegistry
from repro.core.locks import LockMode


def worst_case_cost(
    registry: ActivityRegistry, executed: list[str]
) -> float:
    """``Wcc(P, S)`` of Equation 1 over executed regular activity names.

    Sums ``c(a) + c(a⁻¹)`` for every executed regular activity; the
    compensation of a pivot contributes ``inf``.
    """
    total = 0.0
    for name in executed:
        activity = registry.get(name)
        total += activity.cost + registry.compensation_cost(name)
    return total


def wcc_after(
    registry: ActivityRegistry, wcc: float, next_activity: str
) -> float:
    """``Wcc(P, S')`` of Equation 2: cost after adding one activity."""
    activity = registry.get(next_activity)
    return wcc + activity.cost + registry.compensation_cost(next_activity)


def retry_wcc_charge(
    registry: ActivityRegistry, activity_name: str
) -> float:
    """``Wcc`` increment of one *extra* attempt of a retriable activity.

    Retriable activities have no compensation to pay for (a failed
    attempt has no effect), so each additional attempt contributes its
    execution cost ``c(a)`` alone.  The manager charges this per retry
    when a bounded retry policy is installed, making retry storms
    visible to the cost-based scheduler of Section 4.
    """
    return registry.get(activity_name).cost


def retry_budget_wcc(
    registry: ActivityRegistry, activity_name: str, max_attempts: int
) -> float:
    """Worst-case retry cost of ``a`` under an attempt budget.

    With at most ``max_attempts`` total attempts, the worst case pays
    ``(max_attempts - 1) * c(a)`` on top of the successful execution —
    the bound that keeps ``Wcc`` finite (and termination guaranteed)
    under transient-fault injection.
    """
    if max_attempts < 1:
        raise ValueError(
            f"max_attempts must be >= 1 (got {max_attempts!r})"
        )
    return (max_attempts - 1) * retry_wcc_charge(registry, activity_name)


def is_pseudo_pivot(
    registry: ActivityRegistry,
    wcc_before: float,
    activity_name: str,
    threshold: float,
) -> bool:
    """Equation 3: compensatable, but crossing the threshold right now.

    Pseudo pivots are distinguished from real pivots by *finite*
    worst-case cost.
    """
    activity = registry.get(activity_name)
    if not activity.compensatable:
        return False
    after = wcc_after(registry, wcc_before, activity_name)
    return (
        wcc_before < threshold <= after
        and not math.isinf(after)
    )


class WccMemo:
    """Per-activity-type memo of the Figure-1 charge inputs.

    :meth:`ProcessLockManager.classify_regular` needs, per decision, the
    type's ``c(a) + c(a⁻¹)`` charge (Equation 2) and its
    point-of-no-return flag — both pure functions of the registry entry,
    which is immutable once registered.  The memo computes each type's
    pair once and serves every later classification from a dict hit,
    skipping the two registry lookups and the pivot/infinite-cost
    branch of :meth:`ActivityRegistry.compensation_cost` per call.

    What is **deliberately not** cached is the effective threshold:
    ``Wcc*`` is re-read on every classification — from the program or
    from ``threshold_provider`` — because the resilience layer moves it
    while subsystem breakers open and close.  Invalidation for the
    threshold therefore *is* the provider call itself.

    The registry is append-only and its entries immutable, so memoized
    pairs never go stale: a name unknown at memo creation simply misses
    into the registry (which raises on truly unknown types, preserving
    the un-memoized error behaviour).
    """

    __slots__ = ("_registry", "_entries")

    def __init__(self, registry: ActivityRegistry) -> None:
        self._registry = registry
        #: type name -> (wcc charge, is real point of no return)
        self._entries: dict[str, tuple[float, bool]] = {}

    def lookup(self, type_name: str) -> tuple[float, bool]:
        """``(c(a) + c(a⁻¹), point_of_no_return)`` for one type."""
        entry = self._entries.get(type_name)
        if entry is None:
            registry = self._registry
            activity_type = registry.get(type_name)
            entry = (
                activity_type.cost
                + registry.compensation_cost(type_name),
                activity_type.point_of_no_return,
            )
            self._entries[type_name] = entry
        return entry


def degraded_threshold(base: float, cap: float) -> float:
    """Effective ``Wcc*`` while the resilience layer is degraded.

    A *cap* rather than a multiplier: programs running with an infinite
    threshold (pure optimism) must degrade too, and ``inf * factor`` is
    still ``inf``.  ``min`` also guarantees degradation never *loosens*
    a program's own threshold.
    """
    return min(base, cap)


@dataclass(frozen=True)
class Figure1Step:
    """One row of the Figure-1 execution trace."""

    activity: str
    wcc_before: float
    wcc_after: float
    threshold: float
    treatment: LockMode
    pseudo_pivot: bool
    real_pivot: bool

    def describe(self) -> str:
        kind = (
            "pivot"
            if self.real_pivot
            else "pseudo-pivot" if self.pseudo_pivot else "compensatable"
        )
        return (
            f"{self.activity:<20} Wcc {self.wcc_before:>8g} -> "
            f"{self.wcc_after:>8g}  (Wcc* = {self.threshold:g})  "
            f"lock={self.treatment.value}  [{kind}]"
        )


def figure1_trace(
    registry: ActivityRegistry,
    activity_names: list[str],
    threshold: float,
) -> list[Figure1Step]:
    """Run the Figure-1 algorithm symbolically over an activity sequence.

    Mirrors ``execute_activity`` from the paper: for each regular activity
    the worst-case cost is updated first (Equation 2) and the treatment is
    chosen by comparing against ``Wcc*``; real pivots always exceed the
    threshold (Lemma 1).
    """
    steps: list[Figure1Step] = []
    wcc = 0.0
    for name in activity_names:
        activity = registry.get(name)
        before = wcc
        wcc = wcc_after(registry, wcc, name)
        if activity.point_of_no_return:
            treatment = LockMode.P
            pseudo = False
        elif wcc >= threshold:
            treatment = LockMode.P
            pseudo = True
        else:
            treatment = LockMode.C
            pseudo = False
        steps.append(
            Figure1Step(
                activity=name,
                wcc_before=before,
                wcc_after=wcc,
                threshold=threshold,
                treatment=treatment,
                pseudo_pivot=pseudo,
                real_pivot=activity.point_of_no_return,
            )
        )
    return steps


def figure1_steps_from_trace(
    records: list[dict], pid: int
) -> list[Figure1Step]:
    """Rebuild Figure-1 rows from a run's ``wcc.classify`` trace records.

    The observability layer (:mod:`repro.obs`) stamps every treatment
    decision with the post-charge ``Wcc``; replaying those records
    recovers the same step table :func:`figure1_trace` computes
    symbolically, which lets tests cross-check the live protocol against
    the paper's algorithm and lets exhibits render traced runs.
    """
    steps: list[Figure1Step] = []
    previous = 0.0
    for record in records:
        if record.get("kind") != "wcc.classify":
            continue
        if record["pid"] != pid:
            continue
        steps.append(
            Figure1Step(
                activity=record["activity"],
                wcc_before=previous,
                wcc_after=record["wcc"],
                threshold=record["threshold"],
                treatment=LockMode(record["mode"]),
                pseudo_pivot=record["pseudo_pivot"],
                real_pivot=record["real_pivot"],
            )
        )
        previous = record["wcc"]
    return steps


def lemma1_holds(
    registry: ActivityRegistry, pivot_name: str, threshold: float
) -> bool:
    """Lemma 1: scheduling a pivot always exceeds any finite threshold."""
    activity = registry.get(pivot_name)
    if not activity.point_of_no_return:
        raise ValueError(f"{pivot_name!r} is not a point of no return")
    return wcc_after(registry, 0.0, pivot_name) >= threshold
