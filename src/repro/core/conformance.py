"""Protocol conformance suite — the six rules as an executable checklist.

:func:`run_conformance` drives *any* scheduler protocol (anything with
the :class:`~repro.core.protocol.ProcessLockManager` decision interface)
through a battery of two-process micro-scenarios, one per behavioural
requirement of process locking, and reports which requirements hold.

Process locking itself passes every check; the baselines fail exactly
the checks that motivate the paper:

* pure OSL fails ``early-verification`` (it shares against timestamp
  order) and the P-exclusivity checks (it has no P locks at all);
* serial execution and exclusive S2PL fail the ordered-sharing checks
  (they admit no sharing whatsoever).

Use this as a TCK when implementing protocol variants: a variant that
passes the full suite inherits the paper's correctness argument shape.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.activities.activity import Activity
from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.decisions import AbortVictims, Defer, Grant
from repro.core.locks import LockMode
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process

ProtocolFactory = Callable[[ActivityRegistry, ConflictMatrix], object]


@dataclass(frozen=True)
class ConformanceCheck:
    """Outcome of one behavioural requirement."""

    name: str
    description: str
    passed: bool


@dataclass
class ConformanceReport:
    """All check outcomes for one protocol."""

    protocol_name: str
    checks: list[ConformanceCheck] = field(default_factory=list)

    @property
    def passed(self) -> set[str]:
        return {c.name for c in self.checks if c.passed}

    @property
    def failed(self) -> set[str]:
        return {c.name for c in self.checks if not c.passed}

    @property
    def fully_conformant(self) -> bool:
        return not self.failed

    def describe(self) -> str:
        lines = [f"conformance report: {self.protocol_name}"]
        for check in self.checks:
            marker = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{marker}] {check.name}: "
                         f"{check.description}")
        return "\n".join(lines)


class _Scenario:
    """A fresh two-process environment per check."""

    def __init__(self, factory: ProtocolFactory) -> None:
        self.registry = ActivityRegistry()
        self.registry.define_compensatable(
            "alpha", "sub", cost=1.0, compensation_cost=0.5
        )
        self.registry.define_compensatable(
            "beta", "sub", cost=1.0, compensation_cost=0.5
        )
        self.registry.define_pivot("omega", "sub", cost=1.0)
        self.conflicts = ConflictMatrix(self.registry)
        for first in ("alpha", "beta", "omega"):
            for second in ("alpha", "beta", "omega"):
                self.conflicts.declare_conflict(first, second)
        self.conflicts.close_perfect()
        self.protocol = factory(self.registry, self.conflicts)
        program = (
            ProgramBuilder("conf", self.registry)
            .sequence("alpha", "beta")
            .build()
        )
        self.older = Process(pid=1, program=program,
                             timestamp=self.protocol.new_timestamp())
        self.younger = Process(pid=2, program=program,
                               timestamp=self.protocol.new_timestamp())
        self.protocol.attach(self.older)
        self.protocol.attach(self.younger)
        self._seq = 100

    def mint(self, process: Process, name: str) -> Activity:
        self._seq += 1
        return Activity(
            self.registry.get(name), process.pid, seq=self._seq
        )

    def request(self, process: Process, name: str, mode: LockMode):
        return self.protocol.request_activity_lock(
            process, self.mint(process, name), mode
        )


def _check_shares_behind_older_c(scenario: _Scenario) -> bool:
    """C behind an older C lock is ordered shared (Table 2)."""
    assert isinstance(
        scenario.request(scenario.older, "alpha", LockMode.C), Grant
    )
    return isinstance(
        scenario.request(scenario.younger, "alpha", LockMode.C), Grant
    )


def _check_shares_behind_older_p(scenario: _Scenario) -> bool:
    """C behind an older P lock is ordered shared (Table 2)."""
    decision = scenario.request(scenario.older, "omega", LockMode.P)
    if not isinstance(decision, Grant):
        return False
    return isinstance(
        scenario.request(scenario.younger, "alpha", LockMode.C), Grant
    )


def _check_p_exclusive_behind_c(scenario: _Scenario) -> bool:
    """P behind a conflicting C lock is never simply granted."""
    decision = scenario.request(scenario.older, "alpha", LockMode.C)
    if not isinstance(decision, Grant):
        return False
    return not isinstance(
        scenario.request(scenario.younger, "omega", LockMode.P), Grant
    )


def _check_p_p_exclusive(scenario: _Scenario) -> bool:
    """Two conflicting P locks never coexist."""
    decision = scenario.request(scenario.older, "omega", LockMode.P)
    if not isinstance(decision, Grant):
        return False
    return not isinstance(
        scenario.request(scenario.younger, "omega", LockMode.P), Grant
    )


def _check_early_verification(scenario: _Scenario) -> bool:
    """An older request never silently shares behind a younger holder.

    Process locking resolves the timestamp-order violation immediately
    (cascading abort of the younger holder) or defers; pure OSL grants —
    the late-validation flaw.
    """
    decision = scenario.request(scenario.younger, "alpha", LockMode.C)
    if not isinstance(decision, Grant):
        return True  # no sharing at all: trivially early
    outcome = scenario.request(scenario.older, "alpha", LockMode.C)
    return isinstance(outcome, (AbortVictims, Defer))


def _check_commit_respects_hold(scenario: _Scenario) -> bool:
    """A process sharing behind an older one cannot commit first."""
    first = scenario.request(scenario.older, "alpha", LockMode.C)
    second = scenario.request(scenario.younger, "alpha", LockMode.C)
    if not (isinstance(first, Grant) and isinstance(second, Grant)):
        return True  # no sharing: nothing to hold
    return not isinstance(
        scenario.protocol.try_commit(scenario.younger), Grant
    )


def _check_compensation_wounds_later_sharers(
    scenario: _Scenario,
) -> bool:
    """C⁻¹ cascades into conflicting locks acquired after the original."""
    reserved = scenario.older.launch("alpha")
    first = scenario.protocol.request_activity_lock(
        scenario.older, reserved, LockMode.C
    )
    if not isinstance(first, Grant):
        return False
    scenario.older.on_committed(reserved)
    second = scenario.request(scenario.younger, "alpha", LockMode.C)
    if not isinstance(second, Grant):
        return True  # no sharing to cascade into
    failed = scenario.older.launch("beta")
    plan = scenario.older.on_failed(failed)
    comp = scenario.older.make_compensation(plan.compensations[0])
    outcome = scenario.protocol.request_compensation_lock(
        scenario.older, comp
    )
    return isinstance(outcome, (AbortVictims, Defer))


def _check_release_unblocks(scenario: _Scenario) -> bool:
    """Detaching a holder makes its locks available again."""
    decision = scenario.request(scenario.older, "omega", LockMode.P)
    if not isinstance(decision, Grant):
        return False
    scenario.protocol.detach(scenario.older)
    return isinstance(
        scenario.request(scenario.younger, "omega", LockMode.P), Grant
    )


CHECKS: list[tuple[str, Callable[[_Scenario], bool], str]] = [
    ("c-shares-behind-older-c", _check_shares_behind_older_c,
     "ordered sharing of C locks in timestamp order"),
    ("c-shares-behind-older-p", _check_shares_behind_older_p,
     "C locks may follow an older P lock"),
    ("p-exclusive-behind-c", _check_p_exclusive_behind_c,
     "P locks are exclusive against held C locks"),
    ("p-p-exclusive", _check_p_p_exclusive,
     "P locks are mutually exclusive"),
    ("early-verification", _check_early_verification,
     "timestamp-order violations resolved at acquisition time"),
    ("commit-respects-hold", _check_commit_respects_hold,
     "no commit while a lock is on hold (relinquish rule)"),
    ("compensation-cascades", _check_compensation_wounds_later_sharers,
     "C⁻¹ reaches conflicting locks acquired after the original"),
    ("release-unblocks", _check_release_unblocks,
     "termination releases every lock"),
]


def run_conformance(
    factory: ProtocolFactory, protocol_name: str = "protocol"
) -> ConformanceReport:
    """Run the full check battery against a protocol factory.

    Each check gets a completely fresh environment (registry, conflict
    matrix, protocol instance, two processes with ascending timestamps).
    """
    report = ConformanceReport(protocol_name=protocol_name)
    for name, check, description in CHECKS:
        scenario = _Scenario(factory)
        try:
            passed = bool(check(scenario))
        except Exception:
            passed = False
        report.checks.append(
            ConformanceCheck(
                name=name, description=description, passed=passed
            )
        )
    return report
