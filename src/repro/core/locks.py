"""Lock modes and the C/P compatibility matrix (paper Table 2).

Process locking associates locks with *activity types*, not data objects.
Two modes exist:

* **C locks** protect compensatable activities;
* **P locks** protect pivot activities (and activities *treated* like
  pivots by the cost-based extension — pseudo pivots).

Compatibility (Table 2) — ``held`` row, ``acquired`` column:

==========  =========  =========
held \\ acq  C lock     P lock
==========  =========  =========
C lock      ordered    exclusive
P lock      ordered    exclusive
==========  =========  =========

"Ordered shared" means the later lock may coexist with the earlier one but
is *on hold*: the acquisition order constrains execution, further lock
acquisition, and release (the holder cannot commit before the earlier
process terminates).  "Exclusive" combinations can never coexist; the
protocol resolves attempts by aborting the younger running holder or by
deferring the request.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.process.instance import Process


class LockMode(enum.Enum):
    """C (compensatable) or P (pivot) activity-type locks."""

    C = "C"
    P = "P"


def can_ordered_share(held: LockMode, acquired: LockMode) -> bool:
    """Table 2: whether ``acquired`` may be ordered-shared behind ``held``."""
    return acquired is LockMode.C


_lock_ids = itertools.count(1)


@dataclass(slots=True)
class LockEntry:
    """One granted lock: a list entry of one activity type's lock list.

    Slotted: entries are the single most-allocated record on the lock
    hot path (one per grant), and slots cut the per-instance dict.

    Parameters
    ----------
    process:
        The owning process (carries pid, timestamp, and state).
    type_name:
        The locked activity type.
    mode:
        Current mode; Comp→Piv conversion upgrades C to P in place.
    position:
        Global acquisition sequence number; the sharing order of any two
        locks is the order of their positions.
    activity_uid:
        The activity invocation this lock was acquired for.
    table:
        The owning lock table, when the entry is table-managed; mode
        changes notify it so its mode indexes stay current.
    """

    process: Process
    type_name: str
    mode: LockMode
    position: int
    activity_uid: int | None = None
    converted: bool = False
    lock_id: int = field(default_factory=lambda: next(_lock_ids))
    table: object = field(default=None, repr=False, compare=False)

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def timestamp(self) -> int:
        return self.process.timestamp

    def upgrade_to_p(self) -> None:
        """Comp→Piv conversion of this entry (keeps the sharing position)."""
        if self.mode is LockMode.C:
            self.mode = LockMode.P
            self.converted = True
            if self.table is not None:
                self.table._note_upgrade(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mode.value}({self.type_name})@"
            f"P{self.pid}#{self.position}"
        )
