"""Sharded lock table: per-subsystem partitions of the ordered lock table.

Activities of different subsystems never conflict (they cannot share
data — :class:`~repro.activities.commutativity.ConflictMatrix` enforces
it at declaration time), so the per-type lock lists partition cleanly by
the owning subsystem: every conflict edge, blocker-index edge, and
ordered-sharing decision is *local to one shard*.

:class:`ShardedLockTable` materializes that partition on top of
:class:`~repro.core.lock_table.LockTable`:

* each :class:`LockShard` names one subsystem, owns the activity types
  registered to it, and keeps live per-shard counters (lock count,
  acquire/release totals) that feed the per-shard observability gauges;
* structural audits can run **per shard** — position-sortedness,
  liveness, conflict locality, and a shard-restricted blocker-index
  recomputation — so a sampling auditor (``REPRO_AUDIT_EVERY``) can
  round-robin one shard per audit instead of rescanning every lock;
* cross-shard facts stay in the thin aggregate layer the base class
  already maintains — the global per-process lists, P-lock counts
  (unique completing process), and the commit-blocker index — so
  :mod:`repro.core.protocol`, the scheduler, and the baselines keep
  their exact API and produce **byte-identical schedules**: sharding
  changes how the table is *audited and observed*, never how a request
  is ordered or granted.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.activities.commutativity import ConflictMatrix
from repro.core.lock_table import LockTable
from repro.core.locks import LockEntry, LockMode
from repro.errors import ProtocolError
from repro.process.instance import Process


class LockShard:
    """One subsystem's slice of the lock table (types + counters)."""

    __slots__ = (
        "name", "types", "lock_count", "acquires", "releases", "worker",
        "type_mask", "live_mask",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        #: Activity type names owned by this shard.
        self.types: set[str] = set()
        #: Live locks currently held on this shard's types.
        self.lock_count = 0
        self.acquires = 0
        self.releases = 0
        #: Owning worker index under parallel execution (None = unowned).
        self.worker: int | None = None
        #: Bitmask of compiled type ids owned by this shard.
        self.type_mask = 0
        #: Bitmask of owned type ids with at least one live lock — the
        #: shard's slice of the table-wide live mask.
        self.live_mask = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LockShard({self.name!r}, types={len(self.types)}, "
            f"locks={self.lock_count})"
        )


class ShardedLockTable(LockTable):
    """Lock table partitioned by activity-type subsystem.

    A drop-in :class:`LockTable`: every query and mutation behaves
    identically (the global indexes are the source of truth), plus the
    shard map, per-shard counters, and shard-scoped audits described in
    the module docstring.
    """

    def __init__(self, conflicts: ConflictMatrix) -> None:
        super().__init__(conflicts)
        self._shards: dict[str, LockShard] = {}
        self._shard_by_type: dict[str, LockShard] = {}
        for activity_type in conflicts.registry:
            self._assign(activity_type.name, activity_type.subsystem)

    # ------------------------------------------------------------------
    # shard map
    # ------------------------------------------------------------------
    def _assign(self, type_name: str, subsystem: str) -> LockShard:
        shard = self._shards.get(subsystem)
        if shard is None:
            shard = LockShard(subsystem)
            self._shards[subsystem] = shard
        shard.types.add(type_name)
        shard.type_mask |= 1 << self._conflicts.compiled().index[type_name]
        self._shard_by_type[type_name] = shard
        return shard

    def shard_of(self, type_name: str) -> LockShard:
        """The shard owning ``type_name`` (registering late types)."""
        shard = self._shard_by_type.get(type_name)
        if shard is None:
            # Type registered after the table was built.
            activity_type = self._conflicts.registry.get(type_name)
            shard = self._assign(type_name, activity_type.subsystem)
        return shard

    @property
    def shards(self) -> dict[str, LockShard]:
        return self._shards

    def shard_names(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def assign_workers(self, n_workers: int) -> dict[str, int]:
        """Distribute shards over ``n_workers`` workers round-robin.

        Shard order (registry declaration order) is deterministic, so
        the assignment is a pure function of the workload — the same
        shard lands on the same worker at every run, which keeps worker
        annotations in the trace reproducible.
        """
        assignment: dict[str, int] = {}
        for index, name in enumerate(self.shard_names()):
            worker = index % max(1, n_workers)
            self._shards[name].worker = worker
            assignment[name] = worker
        return assignment

    def worker_of(self, type_name: str) -> int | None:
        """The worker owning ``type_name``'s shard (None when unowned)."""
        return self.shard_of(type_name).worker

    # ------------------------------------------------------------------
    # mutation (counter maintenance on top of the base bookkeeping)
    # ------------------------------------------------------------------
    def acquire(
        self,
        process: Process,
        type_name: str,
        mode: LockMode,
        activity_uid: int | None = None,
    ) -> LockEntry:
        entry = super().acquire(process, type_name, mode, activity_uid)
        shard = self.shard_of(type_name)
        shard.lock_count += 1
        shard.acquires += 1
        shard.live_mask = self._live_mask & shard.type_mask
        return entry

    def release_all(self, pid: int) -> list[LockEntry]:
        released = super().release_all(pid)
        touched: set[str] = set()
        for entry in released:
            shard = self.shard_of(entry.type_name)
            shard.lock_count -= 1
            shard.releases += 1
            touched.add(shard.name)
        for name in touched:
            shard = self._shards[name]
            shard.live_mask = self._live_mask & shard.type_mask
        return released

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def check_invariants(
        self,
        live_pids: Iterable[int],
        shards: Iterable[str] | None = None,
    ) -> None:
        """Audit the table, fully or one shard at a time.

        With ``shards=None`` this is the full audit: the base class's
        global checks plus shard-map consistency (every held type is
        owned by exactly one shard, per-shard lock counters sum to the
        global count).  With a list of shard names, only those shards
        are audited — the sampling auditor's round-robin mode.
        """
        if shards is None:
            super().check_invariants(live_pids)
            self._check_shard_totals()
            for shard in self._shards.values():
                self._check_shard(shard, set(live_pids))
            return
        self._sync()
        live = set(live_pids)
        for name in shards:
            shard = self._shards.get(name)
            if shard is None:
                raise ProtocolError(f"unknown lock shard {name!r}")
            self._check_shard(shard, live)

    def _check_shard_totals(self) -> None:
        per_shard = sum(
            shard.lock_count for shard in self._shards.values()
        )
        if per_shard != self.lock_count:
            raise ProtocolError(
                f"shard lock counters sum to {per_shard}, table holds "
                f"{self.lock_count}"
            )
        for type_name in self._by_type:
            if type_name not in self._shard_by_type:
                raise ProtocolError(
                    f"held type {type_name!r} is not owned by any shard"
                )

    def _check_shard(self, shard: LockShard, live: set[int]) -> None:
        """Shard-local structural audit.

        Checks only the shard's types: position-sortedness, holder
        liveness, counter agreement, conflict locality (the conflict
        relation never leaves the shard), and a blocker-index
        recomputation restricted to the shard's entries — every edge it
        derives must be present in the global index (conflicts are
        shard-local, so the shard sees the complete evidence for each of
        its edges).
        """
        plane = self._live_plane()
        index = plane.index
        masks = plane.masks
        expected_type_mask = 0
        for type_name in shard.types:
            expected_type_mask |= 1 << index[type_name]
        if shard.type_mask != expected_type_mask:
            raise ProtocolError(
                f"shard {shard.name!r}: type mask {shard.type_mask:#x} "
                f"disagrees with owned types ({expected_type_mask:#x})"
            )
        count = 0
        entries = []
        for type_name in shard.types:
            # Conflict locality as one mask test: every conflict of an
            # owned type must stay inside the shard's type mask.
            if masks[index[type_name]] & ~shard.type_mask:
                foreign = [
                    plane.names[i]
                    for i in range(len(plane.names))
                    if masks[index[type_name]] >> i & 1
                    and not shard.type_mask >> i & 1
                ]
                raise ProtocolError(
                    f"shard {shard.name!r}: type {type_name!r} "
                    f"conflicts with foreign types {foreign!r}"
                )
            type_entries = self._by_type.get(type_name)
            if not type_entries:
                continue
            positions = [entry.position for entry in type_entries]
            if positions != sorted(positions):
                raise ProtocolError(
                    f"shard {shard.name!r}: lock list of {type_name!r} "
                    f"is not position-sorted"
                )
            for entry in type_entries:
                if entry.pid not in live:
                    raise ProtocolError(
                        f"shard {shard.name!r}: lock {entry} belongs to "
                        f"a terminated process"
                    )
            count += len(type_entries)
            entries.extend(type_entries)
        if count != shard.lock_count:
            raise ProtocolError(
                f"shard {shard.name!r}: counter says "
                f"{shard.lock_count} locks, lists hold {count}"
            )
        if shard.live_mask != self._live_mask & shard.type_mask:
            raise ProtocolError(
                f"shard {shard.name!r}: live mask {shard.live_mask:#x} "
                f"disagrees with the table-wide live mask slice "
                f"({self._live_mask & shard.type_mask:#x})"
            )
        conflict = self._conflicts.conflict
        for mine in entries:
            for other in entries:
                if (
                    other.pid != mine.pid
                    and other.position < mine.position
                    and conflict(other.type_name, mine.type_name)
                ):
                    if other.pid not in self._blocked_by.get(
                        mine.pid, ()
                    ):
                        raise ProtocolError(
                            f"shard {shard.name!r}: blocker edge "
                            f"P{other.pid} -> P{mine.pid} missing from "
                            f"the global index"
                        )
