"""Naive reference implementations of the indexed hot-path queries.

The scheduling hot path is served by incremental indexes (the conflict
adjacency map in :class:`~repro.activities.commutativity.ConflictMatrix`,
the blocker index in :class:`~repro.core.lock_table.LockTable`, and the
process manager's wake-up index).  This module keeps the original
recompute-from-scratch formulations alive as *oracles*:

* :meth:`LockTable.check_invariants` compares the blocker index against
  :func:`naive_blocked_by` on every audit;
* the property tests churn a table through random histories and assert
  index/oracle agreement after every step;
* ``benchmarks/test_perf_scaling.py`` runs whole workloads through the
  naive path and asserts byte-identical schedules (and measures the
  speedup the indexes buy).

The functions intentionally reach into private table state — they *are*
the specification of what that state means.
"""

from __future__ import annotations

from repro.process.instance import Process


def naive_conflicting_types(matrix, name: str) -> set[str]:
    """O(pairs) scan over every declared conflict (pre-index behavior)."""
    matrix._registry.get(name)
    result: set[str] = set()
    for pair in matrix._conflicts:
        if name in pair:
            other = set(pair) - {name}
            result.add(next(iter(other)) if other else name)
    return result


def naive_conflicting_locks(
    table, type_name: str, exclude_pid: int | None = None
) -> list:
    """Collect-then-sort formulation of ``conflicting_locks``."""
    result = []
    candidates = set(
        naive_conflicting_types(table._conflicts, type_name)
    )
    for candidate in candidates:
        for entry in table._by_type.get(candidate, ()):
            if exclude_pid is not None and entry.pid == exclude_pid:
                continue
            result.append(entry)
    result.sort(key=lambda entry: entry.position)
    return result


def naive_commit_blockers(table, process: Process) -> set[int]:
    """O(locks²) re-derivation of the Commit-Rule blockers."""
    blockers: set[int] = set()
    for mine in table._by_pid.get(process.pid, ()):
        for other in naive_conflicting_locks(
            table, mine.type_name, exclude_pid=process.pid
        ):
            if other.position < mine.position:
                blockers.add(other.pid)
    return blockers


def naive_find_wait_cycle(edges: dict[int, set[int]]) -> list | None:
    """Unguarded cycle search through the real :mod:`networkx`.

    Rebuilds the wait-for graph as an actual ``networkx.DiGraph`` (with
    the same node/edge insertion order :class:`WaitForGraph` would use)
    and runs ``nx.find_cycle`` on *every* call — the formulation the
    scheduler used before the in-tree port plus :class:`IncrementalWaitFor`
    replaced it.  When a cycle exists both return the same one; this is
    the oracle the ported cycle search is property-tested against.
    """
    import networkx as nx

    graph = nx.DiGraph()
    for waiter, blockers in edges.items():
        # frozenset(...) mirrors WaitForGraph.set_waits exactly, so the
        # edge insertion order — and hence the found cycle — matches.
        for blocker in frozenset(blockers):
            if blocker != waiter:
                graph.add_edge(waiter, blocker)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle]


def naive_blocked_by(table) -> dict[int, set[int]]:
    """The full blocker relation recomputed pairwise from the entries."""
    blocked_by: dict[int, set[int]] = {}
    entries = [e for es in table._by_pid.values() for e in es]
    conflict = table._conflicts.conflict
    for mine in entries:
        for other in entries:
            if (
                other.pid != mine.pid
                and other.position < mine.position
                and conflict(other.type_name, mine.type_name)
            ):
                blocked_by.setdefault(mine.pid, set()).add(other.pid)
    return blocked_by
