"""Naive reference implementations of the indexed hot-path queries.

The scheduling hot path is served by incremental indexes (the conflict
adjacency map in :class:`~repro.activities.commutativity.ConflictMatrix`,
the blocker index in :class:`~repro.core.lock_table.LockTable`, and the
process manager's wake-up index).  This module keeps the original
recompute-from-scratch formulations alive as *oracles*:

* :meth:`LockTable.check_invariants` compares the blocker index against
  :func:`naive_blocked_by` on every audit;
* the property tests churn a table through random histories and assert
  index/oracle agreement after every step;
* ``benchmarks/test_perf_scaling.py`` runs whole workloads through the
  naive path and asserts byte-identical schedules (and measures the
  speedup the indexes buy);
* the ``adjacency_*`` functions below preserve the pre-compiled-plane
  hot path (frozenset adjacency iteration instead of bitmask ANDs) for
  the ``compiled_vs_indexed`` sweep and the compiled-table property
  tests — the dict-based :class:`ConflictMatrix` itself stays the
  dev-time oracle of the compiled bitsets.

The functions intentionally reach into private table state — they *are*
the specification of what that state means.
"""

from __future__ import annotations

from repro.process.instance import Process


def naive_conflicting_types(matrix, name: str) -> set[str]:
    """O(pairs) scan over every declared conflict (pre-index behavior)."""
    matrix._registry.get(name)
    result: set[str] = set()
    for pair in matrix._conflicts:
        if name in pair:
            other = set(pair) - {name}
            result.add(next(iter(other)) if other else name)
    return result


def naive_conflicting_locks(
    table, type_name: str, exclude_pid: int | None = None
) -> list:
    """Collect-then-sort formulation of ``conflicting_locks``."""
    result = []
    candidates = set(
        naive_conflicting_types(table._conflicts, type_name)
    )
    for candidate in candidates:
        for entry in table._by_type.get(candidate, ()):
            if exclude_pid is not None and entry.pid == exclude_pid:
                continue
            result.append(entry)
    result.sort(key=lambda entry: entry.position)
    return result


def naive_commit_blockers(table, process: Process) -> set[int]:
    """O(locks²) re-derivation of the Commit-Rule blockers."""
    blockers: set[int] = set()
    for mine in table._by_pid.get(process.pid, ()):
        for other in naive_conflicting_locks(
            table, mine.type_name, exclude_pid=process.pid
        ):
            if other.position < mine.position:
                blockers.add(other.pid)
    return blockers


def naive_find_wait_cycle(edges: dict[int, set[int]]) -> list | None:
    """Unguarded cycle search through the real :mod:`networkx`.

    Rebuilds the wait-for graph as an actual ``networkx.DiGraph`` (with
    the same node/edge insertion order :class:`WaitForGraph` would use)
    and runs ``nx.find_cycle`` on *every* call — the formulation the
    scheduler used before the in-tree port plus :class:`IncrementalWaitFor`
    replaced it.  When a cycle exists both return the same one; this is
    the oracle the ported cycle search is property-tested against.
    """
    import networkx as nx

    graph = nx.DiGraph()
    for waiter, blockers in edges.items():
        # frozenset(...) mirrors WaitForGraph.set_waits exactly, so the
        # edge insertion order — and hence the found cycle — matches.
        for blocker in frozenset(blockers):
            if blocker != waiter:
                graph.add_edge(waiter, blocker)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle]


def naive_blocked_by(table) -> dict[int, set[int]]:
    """The full blocker relation recomputed pairwise from the entries."""
    blocked_by: dict[int, set[int]] = {}
    entries = [e for es in table._by_pid.values() for e in es]
    conflict = table._conflicts.conflict
    for mine in entries:
        for other in entries:
            if (
                other.pid != mine.pid
                and other.position < mine.position
                and conflict(other.type_name, mine.type_name)
            ):
                blocked_by.setdefault(mine.pid, set()).add(other.pid)
    return blocked_by


# ----------------------------------------------------------------------
# adjacency-path formulations (pre-compiled-plane hot path)
# ----------------------------------------------------------------------
# The compiled-plane PR moved blocker discovery, the Comp-Rule probes,
# and the flat denial scans from frozenset adjacency iteration onto
# per-type bitmasks.  These functions keep the adjacency formulations
# alive verbatim: the compiled-table property tests assert query-level
# agreement after every random table mutation, and the
# ``compiled_vs_indexed`` benchmark sweep replays whole workloads
# through them to price the compilation (byte-identical schedules
# asserted).


def adjacency_blocker_pids(table, type_name: str, pid: int) -> set[int]:
    """Foreign holder pids conflicting with ``type_name`` (acquire-time
    blocker discovery, adjacency formulation)."""
    pids: set[int] = set()
    by_type = table._by_type
    for candidate in table._conflicts.conflicting_types(type_name):
        for other in by_type.get(candidate, ()):
            if other.pid != pid:
                pids.add(other.pid)
    return pids


def adjacency_probe_blocked(
    table, type_name: str, exclude_pid: int, ts: int, aborting
) -> bool:
    """Per-entry nested-loop formulation of ``probe_blocked``."""
    by_type = table._by_type
    for candidate in table._conflicts.conflicting_types(type_name):
        for entry in by_type.get(candidate, ()):
            holder = entry.process
            if holder.pid == exclude_pid:
                continue
            if holder.timestamp >= ts or holder.state is aborting:
                return True
    return False


def adjacency_conflicting_locks(
    table, type_name: str, exclude_pid: int | None = None
) -> list:
    """k-way-merge formulation of ``conflicting_locks``."""
    import heapq

    lists = [
        entries
        for candidate in table._conflicts.conflicting_types(type_name)
        if (entries := table._by_type.get(candidate))
    ]
    if not lists:
        return []
    if len(lists) == 1:
        merged = lists[0]
    else:
        merged = heapq.merge(*lists, key=lambda entry: entry.position)
    if exclude_pid is None:
        return list(merged)
    return [entry for entry in merged if entry.pid != exclude_pid]


def adjacency_conflicting_locks_flat(
    table, type_name: str, exclude_pid: int
) -> list:
    """Collect-then-sort formulation of ``conflicting_locks_flat``."""
    by_type = table._by_type
    entries = [
        entry
        for candidate in table._conflicts.conflicting_types(type_name)
        for entry in by_type.get(candidate, ())
        if entry.process.pid != exclude_pid
    ]
    entries.sort(key=lambda entry: entry.position)
    return entries


def adjacency_conflicting_younger_flat(
    table, type_name: str, exclude_pid: int, ts: int, aborting
) -> list:
    """Filter-then-sort formulation of ``conflicting_younger_flat``."""
    by_type = table._by_type
    entries = []
    for candidate in table._conflicts.conflicting_types(type_name):
        for entry in by_type.get(candidate, ()):
            holder = entry.process
            if holder.pid == exclude_pid:
                continue
            if holder.timestamp >= ts or holder.state is aborting:
                entries.append(entry)
    entries.sort(key=lambda entry: entry.position)
    return entries


def adjacency_iter_conflicting(
    table, type_name: str, exclude_pid: int | None = None
):
    """Unordered per-type iteration formulation of ``iter_conflicting``."""
    for candidate in table._conflicts.conflicting_types(type_name):
        for entry in table._by_type.get(candidate, ()):
            if exclude_pid is None or entry.pid != exclude_pid:
                yield entry


def reference_classify_regular(protocol, process, activity):
    """Un-memoized Figure-1 classification (pre-``WccMemo`` formulation).

    Recomputes ``c(a) + c(a⁻¹)`` through the registry on every call;
    threshold handling is identical to the live path (it was never
    cached — see :class:`~repro.core.cost_based.WccMemo`).
    """
    from repro.core.locks import LockMode
    from repro.obs.events import ActivityClassified

    activity_type = activity.activity_type
    comp_cost = protocol.registry.compensation_cost(activity_type.name)
    process.charge_wcc(activity_type.cost + comp_cost)
    real_pivot = activity_type.point_of_no_return
    threshold = process.program.wcc_threshold
    if protocol.threshold_provider is not None:
        threshold = protocol.threshold_provider(process)
    pseudo_pivot = (
        not real_pivot
        and protocol.cost_based
        and process.wcc >= threshold
    )
    mode = LockMode.P if real_pivot or pseudo_pivot else LockMode.C
    if protocol.tracer.enabled:
        protocol.tracer.emit(
            ActivityClassified(
                pid=process.pid,
                incarnation=process.incarnation,
                activity=activity.name,
                mode=mode.value,
                wcc=process.wcc,
                threshold=threshold,
                pseudo_pivot=pseudo_pivot,
                real_pivot=real_pivot,
            )
        )
    return mode
