"""The process locking protocol (paper Section 3) with the cost-based
extension (Section 4).

:class:`ProcessLockManager` evaluates lock requests against the ordered
lock table and returns :mod:`~repro.core.decisions` objects; the process
manager (:mod:`repro.scheduler.manager`) executes the resulting aborts,
parks deferred requests, and retries them as processes terminate.

Rule summary (Sections 3.2.3 and 4):

Comp-Rule
    C locks share behind older holders (C or P).  Younger running
    C-holders are cascade-aborted; younger aborting holders are waited
    for; a younger P-holder or a younger completing C-holder defers the
    request until that process commits.  A *completing* requester is
    first-class: it aborts any running conflicting holder, old or young.
Piv-Rule and Comp→Piv-Rule
    A pivot needs every C lock of its process converted to P first; the
    conversion and the new P lock follow the same conditions: grant only
    if no conflicting lock remains — older holders and conflicting P locks
    defer the request, younger running C-holders are aborted.  At most one
    process may hold pivot (point-of-no-return) P locks at a time: the
    *completing token* serializes real completions.
C⁻¹-Rule
    Compensation takes a C lock for ``a⁻¹``; every running process holding
    a conflicting lock positioned *after* the original activity's lock is
    cascade-aborted (this is the cascading-abort mechanism); aborting ones
    are waited for.
Abort-Rule
    All locks released once the abort-process execution completed.
Commit-Rule
    Commit is deferred while any of the process's locks is on hold behind
    another live process (strict two-phase locking at process level).

Deviations from the letter of the paper, chosen deliberately and
documented in DESIGN.md:

* requests never share behind an *aborting* older holder — they wait for
  the abort to finish instead of acquiring a lock that the C⁻¹-Rule would
  immediately revoke;
* P-lock requests follow the *literal* Piv-Rule deferment by default:
  they wait while **any** other process holds a P lock, pseudo pivots
  included, which serializes protected/completing processes globally and
  excludes wait cycles among them (``global_p_deferment=False`` selects
  the scoped-ablation reading — conflicting P locks only — whose cycles
  are then broken by :mod:`repro.core.deadlock`);
* the completing requester wounds *older* running C-holders too (the
  paper's first-class treatment) but defers on pseudo-pivot P-holders,
  preserving cost-based cascade protection; deadlock resolution prefers
  unprotected victims.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.activities.activity import Activity
from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.decisions import (
    AbortVictims,
    Decision,
    Defer,
    Grant,
    ProtocolStats,
)
from repro.core.cost_based import WccMemo
from repro.core.locks import LockEntry, LockMode
from repro.core.sharding import ShardedLockTable
from repro.core.rules import HolderPartition, partition_holders
from repro.errors import ProtocolError
from repro.obs import NULL_TRACER
from repro.obs.events import ActivityClassified, LockConverted
from repro.process.instance import Process
from repro.process.state import ProcessState


class ProcessLockManager:
    """Process-locking decision engine over an ordered-shared lock table.

    Parameters
    ----------
    registry:
        Activity catalogue (termination properties and costs).
    conflicts:
        The type-level commutativity relation ``CON``.
    cost_based:
        Enable the Section-4 extension (worst-case-cost thresholds and
        pseudo pivots).  When off, only real points of no return take
        P locks, reproducing the basic Section-3 protocol.
    global_p_deferment:
        Literal Piv-Rule deferment ("any other process holds a P lock");
        disable for the scoped-ablation reading (conflicting P locks
        only).
    """

    #: Observability hook; the manager installs its own tracer here.
    #: Decision outcomes (grant/defer/cascade) are traced by the manager,
    #: which knows the request context; the protocol itself only emits
    #: what the manager cannot see: Figure-1 classifications and in-place
    #: Comp→Piv lock conversions.
    tracer = NULL_TRACER

    #: Optional override for the effective ``Wcc*`` used by
    #: :meth:`classify_regular` — a callable ``process -> float``.  The
    #: resilience layer installs one to tighten the threshold while
    #: subsystem breakers are open; ``None`` (the default) keeps each
    #: program's own static threshold, byte-identically.
    threshold_provider = None

    #: Enabled by the parallel manager: Comp-Rule requests from RUNNING
    #: processes take the probe's early-exit holder scan and grant
    #: directly when it passes, skipping the ordered-merge + partition
    #: build.  Decision-for-decision identical to the slow path (the
    #: probe condition is exactly the partition fall-through), so the
    #: emitted schedule does not depend on this flag.
    probe_fast_path = False

    def __init__(
        self,
        registry: ActivityRegistry,
        conflicts: ConflictMatrix,
        cost_based: bool = True,
        global_p_deferment: bool = True,
    ) -> None:
        self.registry = registry
        self.conflicts = conflicts
        self.cost_based = cost_based
        #: Literal Piv-Rule reading: defer a P request while ANY other
        #: process holds a P lock.  The scoped alternative (defer only on
        #: conflicting P locks) is kept as an ablation; it admits wait
        #: cycles among cost-protected processes.
        self.global_p_deferment = global_p_deferment
        self.table = ShardedLockTable(conflicts)
        self.stats = ProtocolStats()
        self._timestamps = itertools.count(1)
        self._processes: dict[int, Process] = {}
        self._token_owner: int | None = None
        #: Memoized Figure-1 charge inputs (see :class:`WccMemo`); the
        #: effective threshold is never cached — it is re-read from the
        #: program or ``threshold_provider`` on every classification.
        self._wcc_memo = WccMemo(registry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def new_timestamp(self) -> int:
        """Draw the next timestamp from the strictly increasing series."""
        return next(self._timestamps)

    def ensure_timestamp_floor(self, floor: int) -> None:
        """Never issue timestamps ≤ ``floor`` (used by crash recovery).

        Recovered processes keep their pre-crash timestamps; fresh
        submissions must stay strictly younger.
        """
        self._timestamps = itertools.count(
            max(floor + 1, next(self._timestamps))
        )

    def attach(self, process: Process) -> None:
        """Start tracking a (re)submitted process."""
        self._processes[process.pid] = process

    def detach(self, process: Process) -> None:
        """Stop tracking a terminated process and release its locks.

        Implements the Abort-Rule's lock release and the release half of
        the Commit-Rule.
        """
        self.table.release_all(process.pid)
        if self._token_owner == process.pid:
            self._token_owner = None
        self._processes.pop(process.pid, None)

    @property
    def completing_token_owner(self) -> int | None:
        """Pid of the process holding the one-completing-process token."""
        return self._token_owner

    def live_processes(self) -> list[Process]:
        return list(self._processes.values())

    def restore_grant(
        self,
        process: Process,
        type_name: str,
        mode: LockMode,
        activity_uid: int | None,
    ) -> LockEntry:
        """Re-acquire a lock unconditionally (crash recovery only).

        The pre-crash lock state was produced by the rules and is
        therefore consistent; recovery replays it in the original
        sharing order without re-evaluating the rules.  A P lock on a
        point-of-no-return type restores the completing token.
        """
        entry = self.table.acquire(process, type_name, mode, activity_uid)
        if (
            mode is LockMode.P
            and self.registry.get(type_name).point_of_no_return
        ):
            self._token_owner = process.pid
        return entry

    # ------------------------------------------------------------------
    # Figure 1: dynamic pivot determination
    # ------------------------------------------------------------------
    def classify_regular(
        self, process: Process, activity: Activity
    ) -> LockMode:
        """Decide C vs P treatment for a regular activity (Figure 1).

        Charges ``c(a) + c(a⁻¹)`` to the process's worst-case cost
        *before* the treatment decision, per Equation 2; a real point of
        no return contributes an infinite addend and therefore always
        trips the threshold (Lemma 1).
        """
        charge, real_pivot = self._wcc_memo.lookup(activity.name)
        process.charge_wcc(charge)
        threshold = process.program.wcc_threshold
        if self.threshold_provider is not None:
            threshold = self.threshold_provider(process)
        pseudo_pivot = (
            not real_pivot
            and self.cost_based
            and process.wcc >= threshold
        )
        mode = (
            LockMode.P if real_pivot or pseudo_pivot else LockMode.C
        )
        if self.tracer.enabled:
            self.tracer.emit(
                ActivityClassified(
                    pid=process.pid,
                    incarnation=process.incarnation,
                    activity=activity.name,
                    mode=mode.value,
                    wcc=process.wcc,
                    threshold=threshold,
                    pseudo_pivot=pseudo_pivot,
                    real_pivot=real_pivot,
                )
            )
        return mode

    # ------------------------------------------------------------------
    # lock requests
    # ------------------------------------------------------------------
    def request_activity_lock(
        self, process: Process, activity: Activity, mode: LockMode
    ) -> Decision:
        """Comp-Rule or Piv-Rule for a regular activity."""
        self._require_active(process)
        if mode is LockMode.C:
            return self._comp_rule(process, activity)
        return self._piv_rule(process, activity)

    def request_compensation_lock(
        self, process: Process, activity: Activity
    ) -> Decision:
        """C⁻¹-Rule: lock ``a⁻¹`` before compensating ``a``."""
        if activity.compensates is None:
            raise ProtocolError(
                f"{activity} is not a compensating activity"
            )
        original = self.table.entry_for_activity(
            process.pid, activity.compensates
        )
        if original is None:
            raise ProtocolError(
                f"P{process.pid}: no lock found for compensated "
                f"activity uid {activity.compensates}; locks must be "
                "held until the end of the abort (strict 2PL)"
            )
        conflicting = [
            entry
            for entry in self._conflict_scan(activity.name, process.pid)
            if entry.position > original.position
        ]
        partition = partition_holders(process, conflicting)
        victims = (
            partition.younger_running_c
            | partition.younger_running_p
            | partition.older_running
        )
        if partition.younger_completing:
            # Theorem 1's argument rules this out for the basic protocol;
            # defer defensively instead of crashing.
            return self._defer(
                process,
                partition.younger_completing,
                "compensation-blocked-by-completing",
            )
        if victims:
            return self._cascade(victims)
        if partition.aborting:
            return self._defer(
                process, partition.aborting, "wait-aborting"
            )
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    # ------------------------------------------------------------------
    # batch fast path (the parallel manager's shard-transaction probe)
    # ------------------------------------------------------------------
    def probe_c_grants(
        self, process: Process, type_names: Sequence[str]
    ) -> dict[str, bool]:
        """Read-only Comp-Rule verdicts for a batch of C requests.

        For a RUNNING requester, :meth:`_comp_rule` grants a C lock
        exactly when every foreign conflicting holder is strictly older
        *and* not aborting — younger holders defer or cascade, aborting
        holders are waited for.  This probe evaluates that condition per
        type name without building the holder partition or mutating any
        state, so shard workers may run it concurrently with each other
        (the coordinator blocks while they do, and applies the grants
        itself, in declaration order).

        Verdicts are only meaningful while no protocol state mutates
        between probe and grant — the batch fast path's contract; a
        process's *own* C acquisitions do not invalidate them (the scan
        excludes the requester's pid).
        """
        running = process.state is ProcessState.RUNNING
        return {
            type_name: running and self._probe_one(process, type_name)
            for type_name in type_names
        }

    def _conflict_scan(
        self, type_name: str, exclude_pid: int
    ) -> list[LockEntry]:
        """Foreign conflicting holders, for partition building.

        Always in lock-position order: the partition buckets are pid
        *sets*, and a set of ints iterates by insertion history, so
        handing the rules a differently-ordered scan would reorder
        cascade victims downstream.  The fast path still wins by
        replacing the lock table's heapq k-way merge (a ``__lt__`` call
        per element pair) with one flat collect + timsort over the
        already-sorted per-type runs.
        """
        if self.probe_fast_path:
            return self.table.conflicting_locks_flat(
                type_name, exclude_pid
            )
        return self.table.conflicting_locks(
            type_name, exclude_pid=exclude_pid
        )

    def _probe_one(self, process: Process, type_name: str) -> bool:
        """One read-only Comp-Rule verdict (see :meth:`probe_c_grants`)."""
        return not self.table.probe_blocked(
            type_name,
            process.pid,
            process.timestamp,
            ProcessState.ABORTING,
        )

    def grant_c_direct(
        self, process: Process, activity: Activity
    ) -> Grant:
        """Acquire a probed C lock without re-scanning the holders.

        Valid only immediately after :meth:`probe_c_grants` said yes for
        ``activity``'s type with no intervening protocol mutation;
        replicates :meth:`_comp_rule`'s grant tail byte for byte.
        """
        self._require_active(process)
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def try_commit(self, process: Process) -> Decision:
        """Commit-Rule: strict release, deferred while locks are on hold."""
        blockers = {
            pid
            for pid in self.table.commit_blockers(process)
            if pid in self._processes
        }
        if blockers:
            self.stats.commit_defers += 1
            return self._defer(process, blockers, "commit-on-hold")
        self.stats.commits += 1
        return Grant()

    # ------------------------------------------------------------------
    # the rules
    # ------------------------------------------------------------------
    def _comp_rule(self, process: Process, activity: Activity) -> Decision:
        if (
            self.probe_fast_path
            and process.state is ProcessState.RUNNING
        ):
            if self._probe_one(process, activity.name):
                # Probe-verified grant: every foreign conflicting holder
                # is strictly older and not aborting, which is precisely
                # the fall-through condition of the partition checks
                # below for a RUNNING requester — same acquire, same
                # stats, same Grant.
                entry = self.table.acquire(
                    process, activity.name, LockMode.C, activity.uid
                )
                self.stats.c_grants += 1
                return Grant(locks=(entry,))
            # Probe-verified denial: the RUNNING branch below reads only
            # the younger/aborting buckets, so partition the filtered
            # subset — same buckets, same insertion order, no work spent
            # classifying the (usually dominant) older holders.
            conflicting = self.table.conflicting_younger_flat(
                activity.name,
                process.pid,
                process.timestamp,
                ProcessState.ABORTING,
            )
        else:
            conflicting = self._conflict_scan(activity.name, process.pid)
        partition = partition_holders(process, conflicting)
        if process.state is ProcessState.COMPLETING:
            return self._first_class_request(
                process, activity, LockMode.C, partition
            )
        defer_on = (
            partition.younger_running_p | partition.younger_completing
        )
        if defer_on:
            return self._defer(
                process, defer_on, "younger-completing-or-p-holder"
            )
        if partition.younger_running_c:
            return self._cascade(partition.younger_running_c)
        if partition.aborting:
            return self._defer(
                process, partition.aborting, "wait-aborting"
            )
        entry = self.table.acquire(
            process, activity.name, LockMode.C, activity.uid
        )
        self.stats.c_grants += 1
        return Grant(locks=(entry,))

    def _piv_rule(self, process: Process, activity: Activity) -> Decision:
        real_pivot = activity.activity_type.point_of_no_return
        # Literal Piv-Rule deferment: "if any other process holds a
        # P lock, then the request has to be deferred until these
        # processes have terminated".  This serializes P-lock holders
        # globally — pseudo pivots included — which both enforces the
        # one-completing-process strategy and makes wait cycles among
        # protected processes impossible.
        if self.global_p_deferment:
            other_p_holders = (
                self.table.p_lock_holders() - {process.pid}
            )
            if other_p_holders:
                return self._defer(
                    process, other_p_holders, "other-p-holder"
                )
        if real_pivot and self._token_owner not in (None, process.pid):
            return self._defer(
                process,
                frozenset({self._token_owner}),
                "completing-token",
            )
        # Comp→Piv-Rule: the process's C locks convert alongside the new
        # acquisition, so the conflicting-holder scan covers them all.
        own_c_locks = self.table.c_locks_of(process.pid)
        target_types = [entry.type_name for entry in own_c_locks]
        target_types.append(activity.name)
        conflicting: dict[int, LockEntry] = {}
        for type_name in target_types:
            for entry in self._conflict_scan(type_name, process.pid):
                conflicting[entry.lock_id] = entry
        partition = partition_holders(process, list(conflicting.values()))
        if process.state is ProcessState.COMPLETING:
            return self._first_class_request(
                process, activity, LockMode.P, partition,
                real_pivot=real_pivot,
            )
        defer_on = (
            partition.older_c
            | partition.older_p
            | partition.younger_running_p
            | partition.younger_completing
        )
        if defer_on:
            return self._defer(process, defer_on, "piv-rule-defer")
        if partition.younger_running_c:
            return self._cascade(partition.younger_running_c)
        if partition.aborting:
            return self._defer(
                process, partition.aborting, "wait-aborting"
            )
        return self._grant_p(process, activity, own_c_locks, real_pivot)

    def _first_class_request(
        self,
        process: Process,
        activity: Activity,
        mode: LockMode,
        partition: HolderPartition,
        real_pivot: bool = False,
    ) -> Decision:
        """Requests of the completing process abort running C-holders.

        The completing process is first-class: conflicting running
        C-holders — older or younger — are cascade-aborted rather than
        waited for (Section 3.1, Comp-Rule).  Pseudo-pivot P-holders are
        the one exception: their whole purpose is cascade protection, so
        the completing process defers on them; a resulting wait cycle is
        resolved by the manager, which prefers unprotected victims.
        """
        if partition.younger_completing:
            raise ProtocolError(
                f"two completing processes detected: P{process.pid} and "
                f"{sorted(partition.younger_completing)}"
            )
        pseudo_holders = (
            partition.older_p | partition.younger_running_p
        )
        if pseudo_holders:
            return self._defer(
                process, pseudo_holders, "completing-defers-on-pseudo"
            )
        victims = (
            partition.younger_running_c | partition.older_running_c
        )
        if victims:
            return self._cascade(victims)
        if partition.aborting:
            return self._defer(
                process, partition.aborting, "wait-aborting"
            )
        if mode is LockMode.C:
            entry = self.table.acquire(
                process, activity.name, LockMode.C, activity.uid
            )
            self.stats.c_grants += 1
            return Grant(locks=(entry,))
        return self._grant_p(
            process,
            activity,
            self.table.c_locks_of(process.pid),
            real_pivot,
        )

    def _grant_p(
        self,
        process: Process,
        activity: Activity,
        own_c_locks: Sequence[LockEntry],
        real_pivot: bool,
    ) -> Grant:
        for entry in own_c_locks:
            entry.upgrade_to_p()
            self.stats.conversions += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    LockConverted(
                        pid=process.pid,
                        type_name=entry.type_name,
                        position=entry.position,
                    )
                )
        entry = self.table.acquire(
            process, activity.name, LockMode.P, activity.uid
        )
        if real_pivot:
            self._token_owner = process.pid
        self.stats.p_grants += 1
        return Grant(locks=(entry,))

    # ------------------------------------------------------------------
    # decision helpers
    # ------------------------------------------------------------------
    def _defer(
        self, process: Process, blockers: set[int] | frozenset[int],
        reason: str,
    ) -> Defer:
        wait_for = frozenset(blockers)
        self.stats.note_defer(reason)
        return Defer(wait_for=wait_for, reason=reason)

    def _cascade(self, victims: set[int]) -> AbortVictims:
        running = {
            pid
            for pid in victims
            if self._processes.get(pid) is not None
            and self._processes[pid].state is ProcessState.RUNNING
        }
        if not running:
            raise ProtocolError(
                f"cascade requested against non-running processes "
                f"{sorted(victims)}"
            )
        self.stats.cascades_requested += 1
        self.stats.cascade_victims += len(running)
        return AbortVictims(victims=frozenset(running))

    def _require_active(self, process: Process) -> None:
        if not process.state.is_active:
            raise ProtocolError(
                f"P{process.pid}: regular lock request in state "
                f"{process.state.value}"
            )
        if process.pid not in self._processes:
            raise ProtocolError(
                f"P{process.pid} is not attached to the lock manager"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def timestamps(self) -> dict[int, int]:
        return {
            pid: proc.timestamp for pid, proc in self._processes.items()
        }

    def running_pids(self) -> set[int]:
        return {
            pid
            for pid, proc in self._processes.items()
            if proc.state is ProcessState.RUNNING
        }

    def audit(self, shards: Sequence[str] | None = None) -> None:
        """Assert structural invariants of the lock table.

        ``shards`` restricts the audit to the named lock shards (the
        sampling auditor's round-robin mode); ``None`` is the full
        audit.  Deadlock freedom of the basic protocol is asserted
        separately: the manager counts cycle victims, and experiment E5
        (plus the liveness tests) checks the count stays zero when the
        cost-based extension is off.
        """
        if shards is None:
            self.table.check_invariants(self._processes)
        else:
            self.table.check_invariants(self._processes, shards=shards)
