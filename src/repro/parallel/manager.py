"""The thread-per-shard process manager.

:class:`ParallelProcessManager` specializes the sequential
:class:`~repro.scheduler.manager.ProcessManager` along three axes, all
preserving byte-identical schedules at the same seed:

* **shard-local hot paths** — the execution gate, per-pid flight
  cancellation, and backpressure depth reads are answered from
  secondary indexes of the in-flight map instead of full scans.
  Conflicts never cross subsystems (the
  :class:`~repro.activities.commutativity.ConflictMatrix` rejects them
  at declaration), so a same-shard scan sees exactly the conflicting
  candidates the global scan would, and the gate's *set* semantics make
  the restriction order-independent.
* **batch lock acquisition** — a process pre-declares its next
  ``batch_k`` ready activity types, the protocol probes the Comp-Rule
  verdict for each (read-only), and the coordinator then replays the
  grantable prefix through the exact sequential per-activity order:
  launch → classify → grant → start.  The probe is valid across the
  whole prefix because the only protocol mutation inside it is the
  requester's *own* C acquisitions, which the probe excludes by pid.
  Any misprediction (an adaptive ``Wcc*`` provider tightening the
  threshold, or a non-grantable verdict) falls back to the full
  per-lock request path for that activity — byte-identical by
  construction.
* **worker fan-out** — when a probe spans several shard groups that are
  all large enough (``REPRO_PARALLEL_FANOUT`` locks), the per-group
  probes run concurrently on the shards' owning workers; the
  coordinator blocks for all results and applies the grants itself in
  program order.  That fork-join is the deterministic cross-shard
  commit-ordering stage: workers only ever *read*, all mutation stays
  on the coordinator, in the sequential order.
"""

from __future__ import annotations

from repro import config as repro_config
from repro.core.locks import LockMode
from repro.parallel.executor import ShardExecutor
from repro.process.instance import Process
from repro.process.state import ProcessState
from repro.scheduler.events import (
    InflightActivity,
    ParkedRequest,
    RequestKind,
)
from repro.scheduler.manager import ProcessManager


class _IndexedInflight(dict):
    """uid → flight map with per-shard and per-pid secondary indexes.

    A drop-in for the manager's plain ``_inflight`` dict: the primary
    mapping (and its iteration order) is untouched; ``by_shard`` and
    ``by_pid`` mirror it keyed by subsystem name and owning pid, each
    bucket insertion-ordered — so a per-bucket scan yields the same
    flights, in the same relative order, as the global scan filtered to
    that bucket.
    """

    def __init__(self) -> None:
        super().__init__()
        self.by_shard: dict[str, dict[int, InflightActivity]] = {}
        self.by_pid: dict[int, dict[int, InflightActivity]] = {}

    def __setitem__(self, uid: int, flight: InflightActivity) -> None:
        if uid in self:
            del self[uid]
        super().__setitem__(uid, flight)
        shard = flight.activity.activity_type.subsystem
        self.by_shard.setdefault(shard, {})[uid] = flight
        self.by_pid.setdefault(flight.process.pid, {})[uid] = flight

    def __delitem__(self, uid: int) -> None:
        flight = self[uid]
        super().__delitem__(uid)
        shard = flight.activity.activity_type.subsystem
        bucket = self.by_shard.get(shard)
        if bucket is not None:
            bucket.pop(uid, None)
            if not bucket:
                del self.by_shard[shard]
        pids = self.by_pid.get(flight.process.pid)
        if pids is not None:
            pids.pop(uid, None)
            if not pids:
                del self.by_pid[flight.process.pid]

    def pop(self, uid: int, default=None):
        if uid in self:
            flight = self[uid]
            del self[uid]
            return flight
        return default


class ParallelProcessManager(ProcessManager):
    """Thread-per-shard manager with batch lock acquisition.

    Requires a protocol exposing the batch probe interface
    (``probe_c_grants`` / ``grant_c_direct``) over a
    :class:`~repro.core.sharding.ShardedLockTable`;
    :func:`~repro.scheduler.manager.make_manager` checks and falls back
    to the sequential manager otherwise.
    """

    def __init__(
        self,
        protocol,
        subsystems=None,
        config=None,
        seed: int = 0,
        tracer=None,
    ) -> None:
        super().__init__(
            protocol,
            subsystems=subsystems,
            config=config,
            seed=seed,
            tracer=tracer,
        )
        table = protocol.table
        names = table.shard_names()
        self._batch_k = max(1, self.config.batch_k)
        #: Let single C requests (first tries and parked retries) take
        #: the probe's early-exit scan inside the Comp-Rule — decision
        #: and stats identical, partition build skipped on grants.
        protocol.probe_fast_path = True
        n_workers = max(1, min(self.config.workers, max(1, len(names))))
        #: shard name -> owning worker index (deterministic round-robin).
        self._assignment = table.assign_workers(n_workers)
        self._executor = ShardExecutor(n_workers)
        #: Replace the plain in-flight dict with the indexed one (empty
        #: at construction time, so swapping representations is safe).
        self._inflight = _IndexedInflight()
        #: pid -> {seq -> request}: the parked store restricted per
        #: process, maintained by the ``_park``/``_unpark`` overrides.
        #: Each bucket is seq-ordered (parks draw monotone seqs), so
        #: scanning one bucket reproduces the global parked order
        #: restricted to that pid.
        self._parked_by_pid: dict[int, dict[int, ParkedRequest]] = {}
        #: Minimum per-group shard size before a probe is shipped to the
        #: workers.  Unset, fan-out is disabled: on a GIL build the
        #: probes are pure-Python CPU work, so cross-thread dispatch can
        #: only add latency — the workers still own their shards' audits
        #: (:meth:`_run_audit`).  Free-threaded builds (or tests pinning
        #: the dispatch path) opt in via ``REPRO_PARALLEL_FANOUT=N``
        #: (resolved through :mod:`repro.config`).
        self._fanout_threshold = repro_config.parallel_fanout()

    def close(self) -> None:
        self._executor.close()

    # ------------------------------------------------------------------
    # forward progress (batch fast path)
    # ------------------------------------------------------------------
    def _step(self, process: Process) -> None:
        if process.state.is_terminal:
            return
        while True:
            ready = process.ready_activities()
            if not ready:
                break
            if self._batch_step(process, ready):
                continue
            activity = process.launch(ready[0])
            mode = self.protocol.classify_regular(process, activity)
            self._request_regular(process, activity, mode)
        if process.finished and not self._has_parked_commit(process):
            self._request_commit(process)

    def _batch_step(self, process: Process, ready) -> bool:
        """Acquire the grantable C-prefix of the next ``batch_k`` ready
        activities in one probe round-trip.

        Returns whether anything was consumed; ``False`` sends the
        caller down the plain per-activity path for ``ready[0]``
        (identical to the sequential manager).  After a ``True`` the
        caller re-reads the ready set, exactly like the sequential loop
        does after every request.
        """
        prefix = self._predicted_c_prefix(process, ready[: self._batch_k])
        if not prefix:
            return False
        verdicts = self._probe(process, prefix)
        consumed = False
        for name in prefix:
            if not verdicts.get(name):
                break
            activity = process.launch(name)
            mode = self.protocol.classify_regular(process, activity)
            if mode is not LockMode.C:
                # Static-threshold misprediction: an installed adaptive
                # Wcc* provider tightened the cap between prediction and
                # classification.  The activity is already launched and
                # charged — continue through the full request path, as
                # the sequential manager would.
                self._request_regular(process, activity, mode)
                return True
            self._apply_decision(
                self.protocol.grant_c_direct(process, activity),
                ParkedRequest(
                    kind=RequestKind.REGULAR,
                    process=process,
                    activity=activity,
                    mode=mode,
                    parked_at=self.engine.now,
                ),
            )
            consumed = True
        return consumed

    def _predicted_c_prefix(self, process: Process, names) -> list[str]:
        """The longest prefix of ``names`` predicted to classify as C.

        Simulates :meth:`ProcessLockManager.classify_regular`'s Wcc
        accounting without mutating the process, against the *static*
        program threshold — never the adaptive provider, whose
        evaluation pokes circuit breakers and emits transitions.  The
        provider only ever lowers the threshold, so predicted-P is
        certainly P (excluded here) and predicted-C at worst
        mispredicts, which :meth:`_batch_step` resolves through the
        full request path.
        """
        if process.state is not ProcessState.RUNNING:
            return []
        registry = self.protocol.registry
        cost_based = self.protocol.cost_based
        threshold = process.program.wcc_threshold
        wcc = process.wcc
        prefix: list[str] = []
        for name in names:
            activity_type = registry.get(name)
            wcc += activity_type.cost + registry.compensation_cost(name)
            if activity_type.point_of_no_return:
                break
            if cost_based and wcc >= threshold:
                break
            prefix.append(name)
        return prefix

    def _probe(self, process: Process, names) -> dict[str, bool]:
        """Comp-Rule verdicts for ``names``, fanned out per shard group.

        Worker dispatch engages only when the probe genuinely spans
        several large shard groups; otherwise the coordinator probes
        inline.  Either way the verdicts are identical — the probes are
        read-only and the coordinator holds still while waiting.
        """
        if self._fanout_threshold is None or self._executor.workers <= 1:
            return self.protocol.probe_c_grants(process, names)
        registry = self.protocol.registry
        groups: dict[str, list[str]] = {}
        for name in names:
            subsystem = registry.get(name).subsystem
            bucket = groups.setdefault(subsystem, [])
            if name not in bucket:
                bucket.append(name)
        shards = self.protocol.table.shards
        if len(groups) > 1 and all(
            (shard := shards.get(subsystem)) is not None
            and shard.lock_count >= self._fanout_threshold
            for subsystem in groups
        ):
            jobs = [
                (
                    self._assignment.get(subsystem, 0),
                    lambda batch=tuple(group): (
                        self.protocol.probe_c_grants(process, batch)
                    ),
                )
                for subsystem, group in groups.items()
            ]
            verdicts: dict[str, bool] = {}
            for result in self._executor.map_groups(jobs):
                verdicts.update(result)
            return verdicts
        return self.protocol.probe_c_grants(process, names)

    # ------------------------------------------------------------------
    # per-pid reads of the parked store
    # ------------------------------------------------------------------
    def _park(self, request: ParkedRequest) -> None:
        super()._park(request)
        self._parked_by_pid.setdefault(request.process.pid, {})[
            request.seq
        ] = request

    def _unpark(self, request: ParkedRequest) -> None:
        super()._unpark(request)
        pid = request.process.pid
        bucket = self._parked_by_pid.get(pid)
        if bucket is not None:
            bucket.pop(request.seq, None)
            if not bucket:
                del self._parked_by_pid[pid]

    def _cancel_parked_of(self, process, kinds) -> None:
        bucket = self._parked_by_pid.get(process.pid)
        if not bucket:
            return
        doomed = [
            request
            for request in bucket.values()
            if request.kind in kinds
        ]
        for request in doomed:
            self._unpark(request)
            if request.kind is RequestKind.REGULAR:
                process.abandon(request.activity)

    # ------------------------------------------------------------------
    # shard-local reads of the in-flight map
    # ------------------------------------------------------------------
    def _gate_flight(self, flight: InflightActivity) -> None:
        if flight.entry is None:
            return
        if not self.config.gate_conflicting_executions:
            return
        bucket = self._inflight.by_shard.get(
            flight.activity.activity_type.subsystem
        )
        if not bucket or len(bucket) <= 1:
            return
        plane = self.protocol.conflicts.compiled()
        conflict_mask = plane.masks[plane.id_of(flight.activity.name)]
        if not conflict_mask:
            return
        position = flight.entry.position
        flight_uid = flight.activity.uid
        gate_add = flight.gate.add
        dependents = self._dependents
        for other in bucket.values():
            if (
                conflict_mask & other.type_bit
                and other.entry.position < position
                and not other.cancelled
            ):
                other_uid = other.activity.uid
                gate_add(other_uid)
                waiters = dependents.get(other_uid)
                if waiters is None:
                    dependents[other_uid] = {flight_uid}
                else:
                    waiters.add(flight_uid)

    def _flights_of(self, pid: int) -> list[InflightActivity]:
        return list(self._inflight.by_pid.get(pid, {}).values())

    # ------------------------------------------------------------------
    # worker-aware observability & audits
    # ------------------------------------------------------------------
    def _worker_for_type(self, type_name: str) -> int | None:
        worker = self.protocol.table.worker_of(type_name)
        return 0 if worker is None else worker

    def _run_audit(self, shards: tuple[str, ...] | None) -> None:
        if shards is not None and len(shards) == 1:
            worker = self._assignment.get(shards[0])
            if worker is not None and self._executor.workers > 1:
                self._executor.run_on(
                    worker, lambda: self.protocol.audit(shards=shards)
                )
                return
        super()._run_audit(shards)
