"""Parallel execution mode (thread-per-shard workers).

The :class:`ParallelProcessManager` runs one dedicated worker per group
of lock shards and fans read-only probe work out to them, while a
deterministic commit-ordering stage on the coordinator applies every
grant in program order — so the emitted schedule is byte-identical to
the sequential :class:`~repro.scheduler.manager.ProcessManager` at the
same seed.  See ``docs/performance.md`` §7 for the determinism argument
and the batch-acquisition semantics.
"""

from repro.parallel.executor import ShardExecutor
from repro.parallel.manager import ParallelProcessManager

__all__ = ["ParallelProcessManager", "ShardExecutor"]
