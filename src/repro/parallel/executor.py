"""Thread-per-shard work executor with a sequential fallback.

:class:`ShardExecutor` owns one daemon thread per worker; each worker
drains its own queue, so all jobs routed to the same worker execute in
submission order — the property the shard-affinity dispatch relies on
(every job touching a shard goes to the shard's owning worker, hence no
two jobs race on one shard's state).

``workers == 0`` degrades to inline execution through the *same*
``_execute`` path, which is the "sequential fallback sharing the same
code path" the parallel manager uses before threads are warranted and
after :meth:`close`.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable, Sequence


class _Batch:
    """Fork-join rendezvous for one :meth:`ShardExecutor.map_groups`.

    Workers deliver ``(ok, value)`` outcomes into fixed slots; the
    coordinator blocks in :meth:`wait` until every slot is filled, so
    results come back in job order regardless of completion order.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._done = 0
        self._results: list = [None] * size
        self._cond = threading.Condition()

    def deliver(self, slot: int, outcome: tuple) -> None:
        with self._cond:
            self._results[slot] = outcome
            self._done += 1
            if self._done == self._size:
                self._cond.notify_all()

    def wait(self) -> list:
        with self._cond:
            while self._done < self._size:
                self._cond.wait()
            return self._results


class ShardExecutor:
    """A fixed pool of shard-affine worker threads."""

    def __init__(self, workers: int) -> None:
        #: Number of worker threads (0 = inline sequential fallback).
        self.workers = max(0, workers)
        self._queues: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        self._closed = False
        for index in range(self.workers):
            jobs: queue.SimpleQueue = queue.SimpleQueue()
            thread = threading.Thread(
                target=self._worker_loop,
                args=(jobs,),
                name=f"shard-worker-{index}",
                daemon=True,
            )
            self._queues.append(jobs)
            self._threads.append(thread)
            thread.start()

    # ------------------------------------------------------------------
    # the one execution path (workers and the inline fallback share it)
    # ------------------------------------------------------------------
    @staticmethod
    def _execute(fn: Callable) -> tuple:
        try:
            return True, fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            return False, exc

    @staticmethod
    def _unwrap(outcome: tuple):
        ok, value = outcome
        if not ok:
            raise value
        return value

    def _worker_loop(self, jobs: queue.SimpleQueue) -> None:
        while True:
            item = jobs.get()
            if item is None:
                return
            fn, slot, batch = item
            batch.deliver(slot, self._execute(fn))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def map_groups(
        self, jobs: Sequence[tuple[int, Callable]]
    ) -> list:
        """Run ``(worker_id, fn)`` jobs and block until all complete.

        Results return in job order; a job that raised re-raises its
        exception on the coordinator.  With no worker threads (or after
        :meth:`close`) the jobs run inline, in order — the sequential
        fallback.
        """
        if self.workers == 0 or self._closed:
            return [self._unwrap(self._execute(fn)) for _, fn in jobs]
        batch = _Batch(len(jobs))
        for slot, (worker, fn) in enumerate(jobs):
            self._queues[worker % self.workers].put((fn, slot, batch))
        return [self._unwrap(outcome) for outcome in batch.wait()]

    def run_on(self, worker: int, fn: Callable):
        """Run one job on a specific worker and return its result."""
        return self.map_groups([(worker, fn)])[0]

    def close(self) -> None:
        """Stop the worker threads (idempotent).

        Subsequent :meth:`map_groups` calls fall back inline, so a
        closed executor stays usable — crash-recovery incarnations and
        late audits must not hang on a dead pool.
        """
        if self._closed:
            return
        self._closed = True
        for jobs in self._queues:
            jobs.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
