"""Parameterized conflicts via partitioned activity-type families.

The paper's ``CON`` matrix works "on the level of activity types …
but does not consider parameters associated with these invocations",
noting that black-box semantics "does in certain cases not allow to
consider conflicts on a more fine-grained level" — implying that when
parameter information *is* available, finer granularity is desirable.

This module provides that refinement without touching the protocol: a
*partitioned family* expands one logical activity (e.g. ``reserve``)
into one concrete activity type per parameter partition (``reserve@sku0``,
``reserve@sku1``, …).  Same-partition invocations conflict; different
partitions commute.  The lock table, the rules, and the theory oracles
all keep working at type granularity — the family simply gives them
more types to be precise about.

Experiment E11 quantifies the concurrency this buys on a hot-spot
workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.errors import ActivityModelError

#: Separator between the logical name and the partition label.
PARTITION_SEPARATOR = "@"


@dataclass(frozen=True)
class PartitionedFamily:
    """One logical activity expanded over its parameter partitions."""

    base_name: str
    partitions: tuple[str, ...]
    member_names: tuple[str, ...] = field(default=())

    def member(self, partition: str) -> str:
        """Concrete type name for one partition."""
        if partition not in self.partitions:
            raise ActivityModelError(
                f"family {self.base_name!r} has no partition "
                f"{partition!r} (known: {list(self.partitions)})"
            )
        return f"{self.base_name}{PARTITION_SEPARATOR}{partition}"


def base_of(type_name: str) -> str:
    """Logical name of a (possibly partitioned) activity type."""
    return type_name.split(PARTITION_SEPARATOR, 1)[0]


def partition_of(type_name: str) -> str | None:
    """Partition label of a type name, or ``None`` if unpartitioned."""
    if PARTITION_SEPARATOR not in type_name:
        return None
    return type_name.split(PARTITION_SEPARATOR, 1)[1]


def define_partitioned_compensatable(
    registry: ActivityRegistry,
    base_name: str,
    partitions: list[str],
    subsystem: str,
    cost: float,
    compensation_cost: float = 0.0,
    failure_probability: float = 0.0,
) -> PartitionedFamily:
    """Register one compensatable activity type per partition.

    All members share the logical semantics (cost, failure probability,
    compensation) and differ only in the resource partition they touch.
    """
    if not partitions:
        raise ActivityModelError(
            f"family {base_name!r} needs at least one partition"
        )
    members = []
    for partition in partitions:
        name = f"{base_name}{PARTITION_SEPARATOR}{partition}"
        registry.define_compensatable(
            name,
            subsystem,
            cost=cost,
            compensation_cost=compensation_cost,
            failure_probability=failure_probability,
        )
        members.append(name)
    return PartitionedFamily(
        base_name=base_name,
        partitions=tuple(partitions),
        member_names=tuple(members),
    )


def declare_family_self_conflicts(
    matrix: ConflictMatrix, family: PartitionedFamily
) -> None:
    """Same-partition invocations conflict; partitions commute.

    This is the parameterized refinement of a type-level self-conflict:
    ``reserve@sku0`` conflicts with itself but not with
    ``reserve@sku1``.
    """
    for name in family.member_names:
        matrix.declare_conflict(name, name)


def declare_family_cross_conflicts(
    matrix: ConflictMatrix,
    first: PartitionedFamily,
    second: PartitionedFamily,
    aligned: bool = True,
) -> None:
    """Conflicts between two families over the same partition space.

    With ``aligned=True`` only equal partition labels conflict (e.g.
    ``reserve@sku0`` vs ``release@sku0``); with ``aligned=False`` every
    member pair conflicts (the coarse, type-level reading).
    """
    for name_a in first.member_names:
        for name_b in second.member_names:
            if aligned and partition_of(name_a) != partition_of(name_b):
                continue
            matrix.declare_conflict(name_a, name_b)


def coarse_equivalent(
    registry: ActivityRegistry,
    matrix: ConflictMatrix,
    family: PartitionedFamily,
) -> None:
    """Make the family behave like one unpartitioned type.

    Declares conflicts between *all* member pairs — the baseline against
    which E11 measures the partitioned refinement.
    """
    for name_a in family.member_names:
        for name_b in family.member_names:
            matrix.declare_conflict(name_a, name_b)
