"""Activity model: activity types, registry, and commutativity relation."""

from repro.activities.activity import (
    INFINITE_COST,
    Activity,
    ActivityType,
    TerminationClass,
)
from repro.activities.commutativity import (
    ConflictMatrix,
    derive_from_read_write_sets,
)
from repro.activities.partitioning import (
    PartitionedFamily,
    base_of,
    declare_family_cross_conflicts,
    declare_family_self_conflicts,
    define_partitioned_compensatable,
    partition_of,
)
from repro.activities.registry import COMPENSATION_SUFFIX, ActivityRegistry

__all__ = [
    "INFINITE_COST",
    "COMPENSATION_SUFFIX",
    "Activity",
    "ActivityType",
    "ActivityRegistry",
    "ConflictMatrix",
    "PartitionedFamily",
    "TerminationClass",
    "base_of",
    "declare_family_cross_conflicts",
    "declare_family_self_conflicts",
    "define_partitioned_compensatable",
    "derive_from_read_write_sets",
    "partition_of",
]
