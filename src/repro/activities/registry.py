"""Registry of all activity types available in the system (``A*``).

The registry is the process manager's catalogue of transaction programs: it
stores every :class:`~repro.activities.activity.ActivityType`, links regular
activities to their compensating counterparts, and enforces the structural
constraints of Table 1 across pairs (a compensating activity must exist, be
retriable, live in the same subsystem, and have finite cost).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.activities.activity import INFINITE_COST, ActivityType
from repro.errors import ActivityModelError, UnknownActivityError

#: Suffix used for auto-generated compensating activity names.
COMPENSATION_SUFFIX = "^-1"


class ActivityRegistry:
    """Mutable catalogue of activity types.

    Use the ``define_*`` helpers to add well-formed activities; they create
    and link compensating activities automatically.  The registry is the
    single source of truth for activity metadata used by the commutativity
    relation, the process programs, and the locking protocol.
    """

    def __init__(self) -> None:
        self._types: dict[str, ActivityType] = {}

    # ------------------------------------------------------------------
    # definition helpers
    # ------------------------------------------------------------------
    def define_compensatable(
        self,
        name: str,
        subsystem: str,
        cost: float,
        compensation_cost: float = 0.0,
        failure_probability: float = 0.0,
        retriable: bool = False,
        compensation_name: str | None = None,
    ) -> ActivityType:
        """Define a compensatable activity and its compensating partner.

        Parameters
        ----------
        name, subsystem, cost, failure_probability, retriable:
            Properties of the regular activity (see
            :class:`~repro.activities.activity.ActivityType`).
        compensation_cost:
            Execution cost of the compensating activity ``a⁻¹``; may be 0
            (e.g. the inverse of a read-like activity) but must be finite.
        compensation_name:
            Optional explicit name for ``a⁻¹``; defaults to
            ``name + "^-1"``.

        Returns
        -------
        ActivityType
            The regular activity type (its compensating counterpart is
            registered alongside it).
        """
        if compensation_cost < 0 or compensation_cost == INFINITE_COST:
            raise ActivityModelError(
                f"activity {name!r}: compensation cost must be finite and "
                f">= 0 (got {compensation_cost!r}); use define_pivot() for "
                "non-compensatable activities"
            )
        comp_name = compensation_name or f"{name}{COMPENSATION_SUFFIX}"
        compensation = ActivityType(
            name=comp_name,
            subsystem=subsystem,
            cost=compensation_cost,
            failure_probability=0.0,
            retriable=True,
            is_compensation=True,
        )
        regular = ActivityType(
            name=name,
            subsystem=subsystem,
            cost=cost,
            failure_probability=0.0 if retriable else failure_probability,
            compensated_by=comp_name,
            retriable=retriable,
            _compensation_cost_hint=compensation_cost,
        )
        self._register(regular)
        self._register(compensation)
        return regular

    def define_pivot(
        self,
        name: str,
        subsystem: str,
        cost: float,
        failure_probability: float = 0.0,
    ) -> ActivityType:
        """Define a pivot: a non-compensatable, non-retriable activity."""
        pivot = ActivityType(
            name=name,
            subsystem=subsystem,
            cost=cost,
            failure_probability=failure_probability,
        )
        self._register(pivot)
        return pivot

    def define_retriable(
        self,
        name: str,
        subsystem: str,
        cost: float,
        compensation_cost: float | None = None,
    ) -> ActivityType:
        """Define a retriable activity.

        Retriability and compensatability are orthogonal (Section 2.1); pass
        ``compensation_cost`` to make the activity compensatable as well.
        """
        if compensation_cost is not None:
            return self.define_compensatable(
                name,
                subsystem,
                cost,
                compensation_cost=compensation_cost,
                retriable=True,
            )
        retriable = ActivityType(
            name=name,
            subsystem=subsystem,
            cost=cost,
            failure_probability=0.0,
            retriable=True,
        )
        self._register(retriable)
        return retriable

    def _register(self, activity_type: ActivityType) -> None:
        if activity_type.name in self._types:
            raise ActivityModelError(
                f"activity type {activity_type.name!r} is already defined"
            )
        self._types[activity_type.name] = activity_type

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> ActivityType:
        """Return the activity type called ``name``.

        Raises
        ------
        UnknownActivityError
            If no such activity type exists.
        """
        try:
            return self._types[name]
        except KeyError:
            raise UnknownActivityError(
                f"unknown activity type {name!r}"
            ) from None

    def compensation_of(self, name: str) -> ActivityType:
        """Return the compensating activity type for ``name``.

        Raises
        ------
        ActivityModelError
            If the activity is not compensatable.
        """
        regular = self.get(name)
        if regular.compensated_by is None:
            raise ActivityModelError(
                f"activity {name!r} is not compensatable"
            )
        return self.get(regular.compensated_by)

    def compensation_cost(self, name: str) -> float:
        """Cost ``c(a⁻¹)`` of compensating ``name``; ``inf`` for pivots."""
        regular = self.get(name)
        if regular.compensated_by is None:
            return INFINITE_COST
        return self.get(regular.compensated_by).cost

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[ActivityType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    @property
    def names(self) -> list[str]:
        """Names of all registered activity types, in definition order."""
        return list(self._types)

    def regular_types(self) -> list[ActivityType]:
        """All non-compensating activity types."""
        return [t for t in self._types.values() if not t.is_compensation]

    def subsystems(self) -> set[str]:
        """Names of all subsystems referenced by registered activities."""
        return {t.subsystem for t in self._types.values()}

    def validate(self) -> None:
        """Cross-check the registry for dangling compensation links."""
        for activity_type in self._types.values():
            comp = activity_type.compensated_by
            if comp is None:
                continue
            if comp not in self._types:
                raise ActivityModelError(
                    f"activity {activity_type.name!r} references missing "
                    f"compensating activity {comp!r}"
                )
            partner = self._types[comp]
            if not partner.is_compensation:
                raise ActivityModelError(
                    f"activity {comp!r} is referenced as a compensation "
                    "but was not defined as one"
                )
            if partner.subsystem != activity_type.subsystem:
                raise ActivityModelError(
                    f"activity {activity_type.name!r} and its compensation "
                    f"{comp!r} must run in the same subsystem"
                )
