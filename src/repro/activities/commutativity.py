"""Commutativity / conflict relation between activity types.

The process manager treats activities as black boxes but knows, for each
pair of activity types, whether they *commute* (swapping their order leaves
all return values unchanged) or *conflict*.  The paper encodes this as an
``n × n`` boolean matrix ``CON`` over activity types (Section 3.2.1).

Two structural facts are enforced here:

* activities executed in different subsystems never conflict (they cannot
  share data), and
* commutativity is *perfect* (Section 2.3): for every pair ``(a, b)``,
  either all combinations of ``{a, a⁻¹} × {b, b⁻¹}`` commute or all of them
  conflict.  :meth:`ConflictMatrix.close_perfect` propagates conflicts to
  compensating activities accordingly, and :meth:`ConflictMatrix.is_perfect`
  verifies the property.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.activities.registry import ActivityRegistry
from repro.errors import CommutativityError


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending.

    Convenience for cold paths and tests; the lock table's hot loops
    inline the same ``mask & -mask`` peel to avoid generator overhead.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CompiledConflicts:
    """One :class:`ConflictMatrix` state compiled to dense-id bitsets.

    Every registered activity type gets a dense integer id (registry
    definition order — stable across recompiles because the registry is
    append-only), and the conflict relation becomes one big-int bitmask
    per type: bit ``j`` of ``masks[i]`` is set iff types ``i`` and ``j``
    conflict.  Conflict tests are then a shift + AND, and "which held
    types conflict with ``t``" is ``masks[t] & live_mask`` — the form
    the lock table's hot scans consume.

    Instances are immutable snapshots: :meth:`ConflictMatrix.compiled`
    hands out a cached plane and replaces it wholesale whenever the
    relation mutates (``declare_conflict`` / ``close_perfect`` bump the
    matrix version and drop the cache) or a type is registered late
    (detected by the registry-length check).  Consumers therefore cache
    the plane by identity and resync when ``compiled()`` returns a new
    object.
    """

    __slots__ = ("version", "index", "names", "masks", "mask_of")

    def __init__(
        self,
        version: int,
        index: dict[str, int],
        names: list[str],
        masks: list[int],
    ) -> None:
        #: The matrix version this plane was compiled from.
        self.version = version
        #: type name -> dense id (registry definition order).
        self.index = index
        #: dense id -> type name (the inverse of :attr:`index`).
        self.names = names
        #: dense id -> bitmask of conflicting dense ids.
        self.masks = masks
        #: type name -> conflict bitmask (fused ``masks[index[name]]``).
        self.mask_of = {
            name: masks[i] for i, name in enumerate(names)
        }

    def id_of(self, name: str) -> int:
        """Dense id of ``name`` (validating, for scan setup)."""
        try:
            return self.index[name]
        except KeyError:
            raise CommutativityError(
                f"conflict query over unknown activity type {name!r}"
            ) from None

    def conflict(self, first: str, second: str) -> bool:
        """``CON(first, second)`` as one shift + AND."""
        return bool(
            self.masks[self.id_of(first)] >> self.id_of(second) & 1
        )

    def commute(self, first: str, second: str) -> bool:
        return not self.conflict(first, second)

    def conflicting_types(self, name: str) -> frozenset[str]:
        """Decode one row back to names (oracle/test convenience)."""
        names = self.names
        return frozenset(
            names[i] for i in iter_bits(self.masks[self.id_of(name)])
        )


class ConflictMatrix:
    """Symmetric boolean conflict relation over activity type names.

    Hot-path consumers (the lock table, the execution gate) read the
    relation through the **compiled plane** (:meth:`compiled`): dense
    integer type ids and per-type big-int conflict bitmasks, rebuilt
    lazily after every mutation (:meth:`declare_conflict`,
    :meth:`close_perfect`) and on late type registration.  The
    dict/frozenset representation here — :meth:`conflict`,
    :meth:`conflicting_types` and the adjacency index behind it — stays
    as the validating dev-time oracle (theory checks, audits, the
    reference implementations in :mod:`repro.core.reference`).
    :attr:`version` increments on every mutation so dependent
    structures (the lock table's blocker index and adopted plane) can
    detect staleness cheaply.
    """

    def __init__(self, registry: ActivityRegistry) -> None:
        self._registry = registry
        self._conflicts: set[frozenset[str]] = set()
        self._adjacency: dict[str, frozenset[str]] | None = None
        self._compiled: CompiledConflicts | None = None
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the relation changes."""
        return self._version

    @property
    def registry(self) -> ActivityRegistry:
        """The activity registry this relation is defined over."""
        return self._registry

    def _invalidate(self) -> None:
        self._adjacency = None
        self._compiled = None
        self._version += 1

    def compiled(self) -> CompiledConflicts:
        """The compiled bitset plane for the current relation state.

        Cached: mutation (:meth:`declare_conflict`,
        :meth:`close_perfect`) drops the cache through
        :meth:`_invalidate`, and late type registration is caught by
        comparing the plane's type count against the registry — so the
        fast path is one ``None`` check plus one length compare.
        """
        compiled = self._compiled
        if compiled is not None and len(compiled.names) == len(
            self._registry
        ):
            return compiled
        return self._build_compiled()

    def _build_compiled(self) -> CompiledConflicts:
        names = [activity_type.name for activity_type in self._registry]
        index = {name: i for i, name in enumerate(names)}
        masks = [0] * len(names)
        for pair in self._conflicts:
            pair_names = tuple(pair)
            first, second = (
                pair_names
                if len(pair_names) == 2
                else (pair_names[0], pair_names[0])
            )
            a = index[first]
            b = index[second]
            masks[a] |= 1 << b
            masks[b] |= 1 << a
        compiled = CompiledConflicts(
            version=self._version,
            index=index,
            names=names,
            masks=masks,
        )
        self._compiled = compiled
        return compiled

    def _build_adjacency(self) -> dict[str, frozenset[str]]:
        """Materialize the adjacency index over the full registry.

        Every registered type gets an entry (possibly empty), so the
        hot-path lookup doubles as name validation: a miss means the
        queried name is unknown.
        """
        neighbours: dict[str, set[str]] = {
            activity_type.name: set() for activity_type in self._registry
        }
        for pair in self._conflicts:
            names = tuple(pair)
            first, second = (
                names if len(names) == 2 else (names[0], names[0])
            )
            neighbours[first].add(second)
            neighbours[second].add(first)
        adjacency = {
            name: frozenset(others)
            for name, others in neighbours.items()
        }
        self._adjacency = adjacency
        return adjacency

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def declare_conflict(self, first: str, second: str) -> None:
        """Declare that activity types ``first`` and ``second`` conflict.

        The relation is stored symmetrically.  Declaring a conflict between
        activities of different subsystems is rejected because such
        activities cannot share resources.
        """
        type_a = self._registry.get(first)
        type_b = self._registry.get(second)
        if type_a.subsystem != type_b.subsystem:
            raise CommutativityError(
                f"activities {first!r} and {second!r} run in different "
                "subsystems and therefore always commute"
            )
        self._conflicts.add(frozenset((first, second)))
        self._invalidate()

    def declare_conflicts(self, pairs: Iterable[tuple[str, str]]) -> None:
        """Declare several conflicts at once."""
        for first, second in pairs:
            self.declare_conflict(first, second)

    def close_perfect(self) -> None:
        """Extend the relation so that commutativity becomes perfect.

        For every conflicting pair ``(a, b)`` this adds the conflicts
        ``(a⁻¹, b)``, ``(a, b⁻¹)`` and ``(a⁻¹, b⁻¹)`` whenever the
        compensating activities exist, and conversely treats a conflict on
        a compensation as a conflict on its regular activity.
        """
        changed = True
        added = False
        while changed:
            changed = False
            for pair in list(self._conflicts):
                names = tuple(pair) if len(pair) == 2 else (
                    next(iter(pair)),
                    next(iter(pair)),
                )
                for variant in self._perfect_variants(*names):
                    if variant not in self._conflicts:
                        self._conflicts.add(variant)
                        changed = True
                        added = True
        if added:
            self._invalidate()

    def _perfect_variants(
        self, first: str, second: str
    ) -> list[frozenset[str]]:
        variants = []
        for name_a in self._family(first):
            for name_b in self._family(second):
                variants.append(frozenset((name_a, name_b)))
        return variants

    def _family(self, name: str) -> list[str]:
        """``name`` together with its compensation / regular partner."""
        activity = self._registry.get(name)
        family = [name]
        if activity.compensated_by is not None:
            family.append(activity.compensated_by)
        if activity.is_compensation:
            family.extend(
                t.name
                for t in self._registry
                if t.compensated_by == name
            )
        return family

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def conflict(self, first: str, second: str) -> bool:
        """``CON(first, second)``: whether the two types conflict."""
        if first not in self._registry or second not in self._registry:
            raise CommutativityError(
                f"conflict query over unknown activity types "
                f"({first!r}, {second!r})"
            )
        return frozenset((first, second)) in self._conflicts

    def commute(self, first: str, second: str) -> bool:
        """Whether the two types commute (the complement of conflict)."""
        return not self.conflict(first, second)

    def conflicting_types(self, name: str) -> frozenset[str]:
        """All activity type names that conflict with ``name``.

        Served from the adjacency index in O(1); name validation happens
        once at index-build time (a lookup miss on a fresh index means
        the name is unknown).
        """
        adjacency = self._adjacency
        if adjacency is None:
            adjacency = self._build_adjacency()
        try:
            return adjacency[name]
        except KeyError:
            if name in self._registry:
                # Type registered after the index was built: rebuild.
                return self._build_adjacency()[name]
            raise CommutativityError(
                f"conflicting-types query over unknown activity type "
                f"{name!r}"
            ) from None

    def is_perfect(self) -> bool:
        """Check the perfect-commutativity property of Section 2.3."""
        for pair in self._conflicts:
            names = tuple(pair)
            first, second = (
                names if len(names) == 2 else (names[0], names[0])
            )
            for variant in self._perfect_variants(first, second):
                if variant not in self._conflicts:
                    return False
        return True

    def pairs(self) -> set[frozenset[str]]:
        """The raw set of conflicting pairs (copies)."""
        return set(self._conflicts)

    def density(self) -> float:
        """Fraction of regular-type pairs (incl. self-pairs) in conflict."""
        regular = [t.name for t in self._registry.regular_types()]
        total = len(regular) * (len(regular) + 1) // 2
        if total == 0:
            return 0.0
        hits = sum(
            1
            for i, first in enumerate(regular)
            for second in regular[i:]
            if self.conflict(first, second)
        )
        return hits / total


def derive_from_read_write_sets(
    registry: ActivityRegistry,
    access: dict[str, tuple[frozenset[str], frozenset[str]]],
) -> ConflictMatrix:
    """Derive a conflict matrix from data-level read/write sets.

    Parameters
    ----------
    registry:
        The activity registry the matrix should cover.
    access:
        Maps each activity type name to its ``(read_set, write_set)`` of
        record keys, qualified per subsystem (keys of different subsystems
        are distinct by construction of the callers).

    Returns
    -------
    ConflictMatrix
        Two activities conflict iff they run in the same subsystem and one
        writes a record the other reads or writes.  The matrix is closed
        under perfect commutativity afterwards (a compensation is assumed
        to touch the records of its regular activity).
    """
    matrix = ConflictMatrix(registry)
    names = list(access)
    for i, first in enumerate(names):
        reads_a, writes_a = access[first]
        type_a = registry.get(first)
        for second in names[i:]:
            type_b = registry.get(second)
            if type_a.subsystem != type_b.subsystem:
                continue
            reads_b, writes_b = access[second]
            collides = bool(
                writes_a & (reads_b | writes_b)
                or writes_b & (reads_a | writes_a)
            )
            if collides:
                matrix.declare_conflict(first, second)
    matrix.close_perfect()
    return matrix
