"""Activity model of transactional processes (paper Section 2.1, Table 1).

An *activity type* describes a transaction program offered by one of the
underlying transactional subsystems, together with the metadata the process
manager needs to schedule it:

* an execution cost ``c(a)`` (finite, positive for regular activities),
* a failure probability ``p(a)`` in ``[0, 1)``,
* optionally the name of a *compensating* activity type ``a⁻¹`` that
  semantically undoes it, and
* a *retriable* flag: retriable activities are guaranteed to eventually
  succeed, hence their failure probability is zero by definition.

The paper's three classic termination classes fall out of two orthogonal
properties (compensatability and retriability):

=================  =================  ============
class              compensatable      retriable
=================  =================  ============
compensatable      yes                either
pivot              no                 no
retriable          either             yes
compensating a⁻¹   no                 yes
=================  =================  ============

A *pivot* is any regular activity without a compensating counterpart that is
not retriable; committing it is a point of no return for its process.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field

from repro.errors import ActivityModelError

#: Cost assigned to the (non-existent) compensation of a pivot activity.
INFINITE_COST = math.inf


class TerminationClass(enum.Enum):
    """The termination classes of Table 1."""

    COMPENSATABLE = "compensatable"
    PIVOT = "pivot"
    RETRIABLE = "retriable"
    COMPENSATING = "compensating"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ActivityType:
    """A named activity type, i.e. one transaction program in ``A*``.

    Parameters
    ----------
    name:
        Unique name of the activity type within its registry.
    subsystem:
        Name of the transactional subsystem that executes this activity.
        Activities of different subsystems never conflict.
    cost:
        Execution cost ``c(a)``.  Must be finite; must be strictly positive
        for regular activities and non-negative for compensating ones.
    failure_probability:
        ``p(a)`` in ``[0, 1)``.  Zero is required for retriable and
        compensating activities.
    compensated_by:
        Name of the compensating activity type, or ``None`` if the activity
        is not compensatable (making it a pivot unless it is retriable).
    retriable:
        Whether the activity is guaranteed to eventually succeed.
    is_compensation:
        Whether this type *is* a compensating activity ``a⁻¹``.
    """

    name: str
    subsystem: str
    cost: float
    failure_probability: float = 0.0
    compensated_by: str | None = None
    retriable: bool = False
    is_compensation: bool = False

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        """Enforce the cost/failure-probability constraints of Table 1."""
        if not self.name:
            raise ActivityModelError("activity type needs a non-empty name")
        if not self.subsystem:
            raise ActivityModelError(
                f"activity {self.name!r} needs a subsystem name"
            )
        if math.isinf(self.cost) or math.isnan(self.cost):
            raise ActivityModelError(
                f"activity {self.name!r}: execution cost must be finite "
                f"(got {self.cost!r}); only the compensation of a pivot "
                "has infinite cost, and that activity does not exist"
            )
        if self.is_compensation:
            if self.cost < 0:
                raise ActivityModelError(
                    f"compensating activity {self.name!r}: cost must be "
                    f">= 0 (got {self.cost!r})"
                )
        elif self.cost <= 0:
            raise ActivityModelError(
                f"activity {self.name!r}: execution cost must be > 0 "
                f"(got {self.cost!r}); zero cost is reserved for "
                "compensating activities"
            )
        if not 0.0 <= self.failure_probability < 1.0:
            raise ActivityModelError(
                f"activity {self.name!r}: failure probability must lie in "
                f"[0, 1) (got {self.failure_probability!r})"
            )
        if self.retriable and self.failure_probability != 0.0:
            raise ActivityModelError(
                f"activity {self.name!r}: retriable activities have "
                f"failure probability 0 (got {self.failure_probability!r})"
            )
        if self.is_compensation:
            if not self.retriable:
                raise ActivityModelError(
                    f"compensating activity {self.name!r} must be retriable"
                )
            if self.compensated_by is not None:
                raise ActivityModelError(
                    f"compensating activity {self.name!r} must not itself "
                    "be compensatable (c((a⁻¹)⁻¹) = ∞)"
                )

    @property
    def compensatable(self) -> bool:
        """Whether a compensating activity exists for this type."""
        return self.compensated_by is not None

    @property
    def is_pivot(self) -> bool:
        """Whether this is a pivot: neither compensatable nor retriable.

        A retriable activity without compensation is not called a pivot in
        the paper's Table 1 sense (it never fails, so it only appears where
        termination is already assured), but it is still a point of no
        return once committed; see :attr:`point_of_no_return`.
        """
        return (
            not self.compensatable
            and not self.retriable
            and not self.is_compensation
        )

    @property
    def point_of_no_return(self) -> bool:
        """Whether committing this activity forecloses compensation."""
        return not self.compensatable and not self.is_compensation

    @property
    def compensation_cost(self) -> float:
        """Cost of compensating this activity; ``inf`` when impossible."""
        if self.compensated_by is None:
            return INFINITE_COST
        return self._compensation_cost_hint

    # The registry patches the real compensation cost in when it links the
    # two types; a bare ActivityType conservatively reports 0.
    _compensation_cost_hint: float = field(
        default=0.0, repr=False, compare=False
    )

    @property
    def termination_class(self) -> TerminationClass:
        """Classify this type according to Table 1.

        When a type is both compensatable and retriable the compensatable
        classification wins for scheduling purposes (the protocol cares
        about whether a C lock suffices).
        """
        if self.is_compensation:
            return TerminationClass.COMPENSATING
        if self.compensatable:
            return TerminationClass.COMPENSATABLE
        if self.retriable:
            return TerminationClass.RETRIABLE
        return TerminationClass.PIVOT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = {
            TerminationClass.COMPENSATABLE: "c",
            TerminationClass.PIVOT: "p",
            TerminationClass.RETRIABLE: "r",
            TerminationClass.COMPENSATING: "-1",
        }[self.termination_class]
        return f"{self.name}^{marker}"


_activity_ids = itertools.count(1)


def ensure_uid_floor(floor: int) -> None:
    """Never auto-assign activity uids ≤ ``floor``.

    Crash recovery reconstructs activities with their original uids;
    advancing the counter keeps fresh invocations collision-free.
    """
    global _activity_ids
    _activity_ids = itertools.count(
        max(floor + 1, next(_activity_ids))
    )


@dataclass(frozen=True)
class Activity:
    """One invocation of an activity type by a process.

    Activities are the units that appear in process schedules.  Each carries
    a globally unique ``uid`` so that repeated invocations of the same type
    by the same process (e.g. after a resubmission) stay distinguishable.

    Parameters
    ----------
    activity_type:
        The invoked type.
    process_id:
        Identifier of the invoking process.
    seq:
        Position of this activity in the invoking process's own execution
        ledger (0-based).
    compensates:
        For compensating activities, the ``uid`` of the regular activity
        being undone; ``None`` for regular activities.
    uid:
        Globally unique invocation id (auto-assigned).
    """

    activity_type: ActivityType
    process_id: int
    seq: int
    compensates: int | None = None
    uid: int = field(default_factory=lambda: next(_activity_ids))

    @property
    def name(self) -> str:
        """Name of the invoked activity type."""
        return self.activity_type.name

    @property
    def is_compensation(self) -> bool:
        """Whether this invocation is a compensating activity."""
        return self.compensates is not None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f"~{self.compensates}" if self.is_compensation else ""
        return f"{self.name}[P{self.process_id}#{self.seq}{suffix}]"
