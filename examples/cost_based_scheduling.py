#!/usr/bin/env python3
"""Cost-based process scheduling: the ACA ↔ P-RC spectrum (Section 4).

Hospital order-entry processes contain an expensive laboratory panel.
Under pure process locking a running process can be cascade-aborted even
after the panel ran — the work is redone.  The cost-based extension
assigns each process program a threshold ``Wcc*``; once a process's
worst-case cost crosses it, further activities take P locks (pseudo
pivots) and other processes can no longer cascade into it.

This example sweeps the threshold and shows the trade-off the paper
describes: lower thresholds protect more work from compensation but admit
less concurrency.

Run with::

    python examples/cost_based_scheduling.py
"""

import math

from repro.analysis import figure1_text, render_table
from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.workloads import LAB_PANEL_COST, hospital_scenario


def run_with_threshold(threshold: float, seed: int = 5):
    scenario = hospital_scenario(
        patients=8, wards=2, failure_probability=0.05,
        wcc_threshold=threshold,
    )
    protocol = ProcessLockManager(scenario.registry, scenario.conflicts)
    manager = ProcessManager(
        protocol,
        subsystems=scenario.make_subsystems(),
        config=ManagerConfig(audit=True),
        seed=seed,
    )
    for program in scenario.programs:
        manager.submit(program)
    result = manager.run()
    lab_compensations = sum(
        1
        for record in result.records.values()
        for name in record.compensated_names
        if name.startswith("order_lab_panel")
    )
    return result, protocol, lab_compensations


def main() -> None:
    print(figure1_text())
    print()

    rows = []
    thresholds = [1.0, LAB_PANEL_COST, 3 * LAB_PANEL_COST, math.inf]
    for threshold in thresholds:
        result, protocol, lab_comps = run_with_threshold(threshold)
        rows.append(
            (
                "inf" if math.isinf(threshold) else f"{threshold:g}",
                result.stats.committed,
                f"{result.makespan:.0f}",
                protocol.stats.cascade_victims,
                lab_comps,
                f"{result.stats.compensated_cost_protocol:.0f}",
            )
        )
    print(
        render_table(
            [
                "Wcc*",
                "committed",
                "makespan",
                "cascade victims",
                "lab panels undone",
                "cascade comp. cost",
            ],
            rows,
            title=(
                "Threshold sweep: protection (left) vs concurrency "
                "(right) — hospital order entry, 8 patients"
            ),
        )
    )
    print()
    print(
        "Reading: with a low Wcc* the expensive lab panel is never\n"
        "compensated because of other processes (cascade cost ~0), at\n"
        "the price of longer makespans; Wcc* = inf is pure process\n"
        "locking — fastest, but cascades may undo expensive work."
    )


if __name__ == "__main__":
    main()
