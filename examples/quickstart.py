#!/usr/bin/env python3
"""Quickstart: two conflicting purchase processes under process locking.

Walks through the full public API surface in ~60 lines:

1. define activity types with their termination properties (Table 1),
2. declare the commutativity relation ``CON``,
3. author a process program with guaranteed termination,
4. run concurrent processes through the process-locking protocol,
5. check the observed schedule against the paper's correctness criteria.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ActivityRegistry,
    ConflictMatrix,
    ManagerConfig,
    ProcessLockManager,
    ProcessManager,
    ProgramBuilder,
)
from repro.theory import (
    has_correct_termination,
    is_process_recoverable,
)


def main() -> None:
    # 1. Activity types.  ``reserve`` is compensatable (the reservation
    #    can be released), ``charge`` is a pivot (money moves — the point
    #    of no return), ``ship``/``refund_path`` are retriable.
    registry = ActivityRegistry()
    registry.define_compensatable(
        "reserve", "shop", cost=2.0, compensation_cost=1.0,
        failure_probability=0.05,
    )
    registry.define_compensatable(
        "gift_wrap", "shop", cost=1.0, compensation_cost=0.5,
        failure_probability=0.10,
    )
    registry.define_pivot("charge", "bank", cost=1.0)
    registry.define_retriable("ship", "shop", cost=1.5)

    # 2. Commutativity: two reservations against the same stock conflict;
    #    everything else commutes.  close_perfect() extends the relation
    #    to the compensating activities.
    conflicts = ConflictMatrix(registry)
    conflicts.declare_conflict("reserve", "reserve")
    conflicts.declare_conflict("reserve", "gift_wrap")
    conflicts.close_perfect()

    # 3. A process program: reserve, optionally gift-wrap, charge the
    #    card (pivot), then ship — with plain shipping as the assured
    #    alternative should gift-wrapped dispatch fail.
    program = (
        ProgramBuilder("purchase", registry)
        .step("reserve")
        .step("gift_wrap")
        .pivot("charge")
        .alternatives(lambda branch: branch.step("ship"))
        .build()
    )
    print(program.describe())
    print()

    # 4. Run five concurrent purchases.
    protocol = ProcessLockManager(registry, conflicts)
    manager = ProcessManager(
        protocol, config=ManagerConfig(audit=True), seed=42
    )
    for _ in range(5):
        manager.submit(program)
    result = manager.run()

    print(f"committed : {result.stats.committed}/{result.stats.submitted}")
    print(f"makespan  : {result.makespan:.1f} virtual time units")
    print(f"cascades  : {protocol.stats.cascade_victims} victim aborts")
    print(f"resubmits : {result.stats.resubmissions}")
    print()
    print("observed schedule:")
    print(" ", " ".join(str(e) for e in result.trace.events))

    # 5. Correctness: the completed schedule must have correct
    #    termination (CT) and be process-recoverable (P-RC) — Theorems 1
    #    and 2 of the paper, checked mechanically.
    schedule = result.trace.to_schedule(conflicts.conflict)
    print()
    print(f"CT   (Theorem 1): {has_correct_termination(schedule)}")
    print(f"P-RC (Theorem 2): {is_process_recoverable(schedule)}")


if __name__ == "__main__":
    main()
