#!/usr/bin/env python3
"""E-commerce payment processes over real (simulated) subsystems.

Reproduces the paper's flagship application: payment processes whose
structure is "compensatable steps, then the commit decision (pivot), then
retriable fulfilment with alternatives".  The scenario grounds every
activity in a transaction program against in-memory subsystem stores, so
the conflict matrix is *derived* from read/write sets and the subsystem
histories can be checked for serializability afterwards.

Run with::

    python examples/ecommerce_payment.py
"""

from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.theory import (
    has_correct_termination,
    is_process_recoverable,
)
from repro.workloads import payment_scenario


def main() -> None:
    scenario = payment_scenario(
        customers=8, items=3, failure_probability=0.04
    )
    print(f"scenario: {scenario.name}")
    print(
        f"activity types: {len(scenario.registry)}, conflict density: "
        f"{scenario.conflicts.density():.2f}"
    )
    print()
    print("first process program:")
    print(scenario.programs[0].describe())
    print()

    subsystems = scenario.make_subsystems()
    protocol = ProcessLockManager(scenario.registry, scenario.conflicts)
    manager = ProcessManager(
        protocol,
        subsystems=subsystems,
        config=ManagerConfig(audit=True),
        seed=7,
    )
    for program in scenario.programs:
        manager.submit(program)
    result = manager.run()

    print(f"committed  : {result.stats.committed}/{result.stats.submitted}")
    print(f"makespan   : {result.makespan:.1f}")
    print(f"throughput : {result.throughput:.3f} processes / time unit")
    print(f"cascades   : {protocol.stats.cascade_victims}")
    print(f"compensated: {result.stats.compensations} activities "
          f"(cost {result.stats.compensated_cost:.1f})")

    # The shop's ledger reflects exactly the committed purchases: every
    # aborted process compensated its reservations.
    shop = subsystems.get("shop")
    gateway = subsystems.get("gateway")
    print()
    print("subsystem state after the run:")
    for key, value in sorted(shop.store.snapshot().items()):
        print(f"  shop.{key} = {value}")
    for key, value in sorted(gateway.store.snapshot().items()):
        print(f"  gateway.{key} = {value}")
    print(f"  gateway history serializable: {gateway.is_serializable()}")
    print(f"  gateway history ACA:          "
          f"{gateway.avoids_cascading_aborts()}")

    schedule = result.trace.to_schedule(scenario.conflicts.conflict)
    print()
    print(f"CT   (Theorem 1): {has_correct_termination(schedule)}")
    print(f"P-RC (Theorem 2): {is_process_recoverable(schedule)}")


if __name__ == "__main__":
    main()
