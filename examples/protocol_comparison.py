#!/usr/bin/env python3
"""Protocol shoot-out on a synthetic workload.

Runs the same randomly generated workload under every bundled protocol —
serial execution, exclusive S2PL, pure ordered shared locking, the
cascade-avoiding scheduler, and process locking — and prints the
comparison table the paper's argument predicts:

* serial and S2PL are correct but slow (no ordered sharing);
* pure OSL is fast but *incorrect*: its late validation produces
  unresolvable violations (completing processes that needed a cascading
  abort);
* process locking keeps OSL-level concurrency with zero violations.

Run with::

    python examples/protocol_comparison.py
"""

from repro.analysis import render_dict_table
from repro.sim import (
    WorkloadSpec,
    build_workload,
    compare_protocols,
    run_workload,
    schedule_of,
)
from repro.theory import is_prefix_reducible, is_process_recoverable


def main() -> None:
    spec = WorkloadSpec(
        n_processes=12,
        n_activity_types=14,
        conflict_density=0.35,
        failure_probability=0.06,
        parallel_probability=0.2,
        seed=2024,
    )
    workload = build_workload(spec)
    print(
        f"workload: {spec.n_processes} processes, "
        f"{spec.n_activity_types} activity types, "
        f"conflict density {spec.conflict_density}"
    )
    print()

    names = ["serial", "s2pl", "aca", "osl-pure", "process-locking"]
    metrics = compare_protocols(workload, names, seed=11)
    rows = [metrics[name].as_row() for name in names]
    print(render_dict_table(rows, title="Protocol comparison"))
    print()

    for name in names:
        result = run_workload(workload, name, seed=11)
        schedule = schedule_of(workload, result)
        print(
            f"{name:18} P-RED={is_prefix_reducible(schedule, stride=5)!s:5} "
            f"P-RC={is_process_recoverable(schedule)!s:5}"
        )
    print()
    print(
        "Process locking matches (or beats) pure OSL's makespan while\n"
        "keeping every prefix reducible and recoverable; the baselines\n"
        "trade either correctness (osl-pure) or concurrency (serial,\n"
        "s2pl, aca) away."
    )


if __name__ == "__main__":
    main()
