#!/usr/bin/env python3
"""Fault tolerance: crash the process manager mid-run and recover.

The paper's title promises *fault-tolerant* execution.  Beyond
per-process failure handling (compensation, alternatives), a process
manager must survive its own crash: completing processes have passed
their point of no return and **must** finish, aborting processes must
finish undoing, and running processes continue from their journal.

This example runs a travel workload, kills the manager after a fixed
number of simulation events, recovers from the journal, finishes the
run, and then checks the *combined* pre+post-crash schedule against the
paper's correctness criteria.

Run with::

    python examples/crash_recovery.py
"""

from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.scheduler.recovery import crash, recover
from repro.theory import (
    has_correct_termination,
    is_process_recoverable,
)
from repro.workloads import travel_scenario

CRASH_AFTER_EVENTS = 30


def main() -> None:
    scenario = travel_scenario(trips=8, failure_probability=0.10)
    protocol = ProcessLockManager(scenario.registry, scenario.conflicts)
    manager = ProcessManager(
        protocol, config=ManagerConfig(audit=True), seed=4
    )
    for program in scenario.programs:
        manager.submit(program)

    # --- run until the "power goes out" -----------------------------
    manager.engine.run_steps(CRASH_AFTER_EVENTS)
    image = crash(manager)
    print(f"crash at t={image.crashed_at:.1f} after "
          f"{CRASH_AFTER_EVENTS} events")
    print("journal contents (live processes):")
    for snap in sorted(image.snapshots, key=lambda s: s.pid):
        done = sum(1 for r in snap.ledger if not r.compensates)
        print(
            f"  P{snap.pid}: state={snap.state:<10} "
            f"activities committed={done:<2} "
            f"pending={list(snap.pending_launch)}"
        )
    completing = [
        s.pid
        for s in image.snapshots
        if s.state == "completing"
    ]

    # --- recover into a fresh manager -------------------------------
    protocol2 = ProcessLockManager(
        scenario.registry, scenario.conflicts
    )
    recovered = recover(
        image, protocol2, config=ManagerConfig(audit=True), seed=4
    )
    result = recovered.run()

    print()
    print(f"post-recovery commits: {result.stats.committed}")
    if completing:
        outcomes = {
            pid: (
                "committed"
                if result.records[pid].committed_at is not None
                else "NOT COMMITTED (bug!)"
            )
            for pid in completing
        }
        print(f"forward recovery of completing processes: {outcomes}")

    schedule = result.trace.to_schedule(scenario.conflicts.conflict)
    print()
    print(f"combined schedule complete: {schedule.is_complete}")
    print(f"CT   (Theorem 1): {has_correct_termination(schedule)}")
    print(f"P-RC (Theorem 2): {is_process_recoverable(schedule)}")


if __name__ == "__main__":
    main()
