#!/usr/bin/env python3
"""Travel booking with parallel activities and alternative executions.

Highlights two process-model features the other examples keep small:

* **multi-activity (parallel) nodes** — flight and hotel are booked
  concurrently; both are compensatable, so a later failure unwinds both;
* **alternative executions** — after the non-refundable ticket is issued
  (pivot), the preferred confirmation path may fail and be compensated,
  falling back to the assured notification path.

The example also demonstrates failure handling end to end by printing
each process's outcome and the compensations that ran.

Run with::

    python examples/travel_booking.py
"""

from collections import Counter

from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.theory import (
    has_correct_termination,
    is_process_recoverable,
)
from repro.workloads import travel_scenario


def main() -> None:
    scenario = travel_scenario(
        trips=8, hotels=2, flights=2, parallel_booking=True,
        failure_probability=0.12,
    )
    print("trip program (note the parallel booking node):")
    print(scenario.programs[0].describe())
    print()

    protocol = ProcessLockManager(scenario.registry, scenario.conflicts)
    manager = ProcessManager(
        protocol,
        subsystems=scenario.make_subsystems(),
        config=ManagerConfig(audit=True),
        seed=13,
    )
    for program in scenario.programs:
        manager.submit(program)
    result = manager.run()

    print("per-process outcomes:")
    for pid, record in sorted(result.records.items()):
        if record.committed_at is not None:
            outcome = f"committed at t={record.committed_at:.1f}"
        else:
            outcome = "aborted (pre-pivot failure)"
        extras = []
        if record.resubmissions:
            extras.append(f"{record.resubmissions} resubmissions")
        if record.compensations:
            undone = Counter(record.compensated_names)
            extras.append(
                "compensated " + ", ".join(
                    f"{name}×{count}" for name, count in undone.items()
                )
            )
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(f"  P{pid}: {outcome}{suffix}")

    print()
    print(f"committed : {result.stats.committed}/{result.stats.submitted}")
    print(f"subprocess aborts (failed alternatives): "
          f"{result.stats.subprocess_aborts}")
    print(f"makespan  : {result.makespan:.1f}")

    schedule = result.trace.to_schedule(scenario.conflicts.conflict)
    print()
    print(f"CT   (Theorem 1): {has_correct_termination(schedule)}")
    print(f"P-RC (Theorem 2): {is_process_recoverable(schedule)}")


if __name__ == "__main__":
    main()
