#!/usr/bin/env python3
"""The protocol toolbox: conformance checking and cost analysis.

Two developer-facing tools built on top of the reproduction:

1. the **conformance suite** — the six rules as an executable checklist
   (use it as a TCK when writing protocol variants); each baseline
   fails exactly the checks that motivate the paper;
2. **static cost analysis** — the Wcc profile of a program and a
   suggested ``Wcc*`` threshold that protects its expensive steps,
   verified against a live run.

Run with::

    python examples/protocol_toolbox.py
"""

from repro.baselines.osl import PureOrderedSharedLocking
from repro.baselines.s2pl import StrictTwoPhaseLocking
from repro.baselines.serial import SerialScheduler
from repro.core.conformance import run_conformance
from repro.core.protocol import ProcessLockManager
from repro.process.costing import (
    describe_costing,
    pseudo_pivot_index,
    suggest_threshold,
)
from repro.workloads import LAB_PANEL_COST, hospital_scenario


def conformance_tour() -> None:
    print("=" * 64)
    print("1. Rule conformance, protocol by protocol")
    print("=" * 64)
    for name, factory in [
        ("process-locking", ProcessLockManager),
        ("osl-pure", PureOrderedSharedLocking),
        ("s2pl", StrictTwoPhaseLocking),
        ("serial", SerialScheduler),
    ]:
        report = run_conformance(factory, name)
        verdict = (
            "fully conformant"
            if report.fully_conformant
            else f"fails: {', '.join(sorted(report.failed))}"
        )
        print(f"  {name:18} {verdict}")
    print()
    print("Full report for the paper's protocol:")
    print(run_conformance(ProcessLockManager,
                          "process-locking").describe())


def costing_tour() -> None:
    print()
    print("=" * 64)
    print("2. Cost analysis: choosing Wcc* for the hospital workload")
    print("=" * 64)
    scenario = hospital_scenario(patients=1)
    program = scenario.programs[0]
    print(describe_costing(program))
    threshold = suggest_threshold(program, protect_cost=LAB_PANEL_COST)
    index = pseudo_pivot_index(program, threshold)
    from repro.process.costing import enumerate_paths

    crossing = enumerate_paths(program)[0][index]
    print()
    print(
        f"suggested Wcc* to protect the lab panel: {threshold:g}\n"
        f"(the threshold trips at {crossing!r} — the panel is "
        "pivot-treated the moment it is scheduled)"
    )


def main() -> None:
    conformance_tour()
    costing_tour()


if __name__ == "__main__":
    main()
